"""Exporter tests: JSONL / Chrome round-trips and the metrics snapshot."""

import json
import re

import pytest

from repro.obs.export import (
    chrome_payload,
    prometheus_text,
    read_trace,
    sanitize_metric_name,
    write_chrome,
    write_jsonl,
    write_prometheus,
)
from repro.obs.trace import Trace


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def sample_trace():
    clock = FakeClock()
    trace = Trace(name="sample", clock=clock)
    with trace.span("root", impl="sample"):
        clock.t = 0.25
        with trace.span("work", output="o1") as sp:
            clock.t = 0.75
            trace.event("hiccup", reason="test")
            sp.tag(result="ok")
        clock.t = 1.0
    trace.meta.update(counters={"sat_conflicts_spent": 3}, degraded=False)
    return trace


class TestJsonl:
    def test_round_trip(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_trace, path)
        assert read_trace(path) == json.loads(
            json.dumps(sample_trace.records()))

    def test_one_record_per_line(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(sample_trace, path)
        lines = open(path).read().strip().splitlines()
        assert len(lines) == len(sample_trace.records())
        assert json.loads(lines[0])["type"] == "meta"


class TestChrome:
    def test_payload_shape(self, sample_trace):
        payload = chrome_payload(sample_trace)
        assert payload["displayTimeUnit"] == "ms"
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 2
        assert len(instants) == 1
        work = next(e for e in complete if e["name"] == "work")
        assert work["ts"] == pytest.approx(0.25e6)  # microseconds
        assert work["dur"] == pytest.approx(0.5e6)
        assert work["args"]["tags"] == {"output": "o1", "result": "ok"}

    def test_file_is_single_valid_json(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome(sample_trace, path)
        payload = json.loads(open(path).read())
        assert "traceEvents" in payload
        assert payload["otherData"]["name"] == "sample"

    def test_round_trip_preserves_structure(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome(sample_trace, path)
        records = read_trace(path)
        direct = sample_trace.records()
        assert [r["type"] for r in records] == [r["type"] for r in direct]
        spans = [r for r in records if r["type"] == "span"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["work"]["parent"] == by_name["root"]["id"]
        assert by_name["work"]["ts"] == pytest.approx(0.25)
        assert by_name["work"]["dur"] == pytest.approx(0.5)
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["name"] == "hiccup"
        assert event["span"] == by_name["work"]["id"]


class TestPrometheus:
    def test_snapshot_contents(self, sample_trace, tmp_path):
        text = prometheus_text(sample_trace)
        assert '# TYPE repro_phase_seconds_total counter' in text
        assert 'repro_phase_calls_total{phase="root"} 1' in text
        assert 'repro_phase_calls_total{phase="root/work"} 1' in text
        assert 'repro_run_degraded 0' in text
        assert ('repro_run_counter_total{counter="sat_conflicts_spent"} 3'
                in text)
        path = str(tmp_path / "m.prom")
        write_prometheus(sample_trace, path)
        assert open(path).read() == text

    def test_label_escaping(self):
        clock = FakeClock()
        trace = Trace(name='we"ird\\name', clock=clock)
        with trace.span('we"ird\\name'):
            clock.t = 1.0
        text = prometheus_text(trace)
        assert 'phase="we\\"ird\\\\name"' in text


def parse_exposition(text):
    """Minimal Prometheus exposition parser: {(metric, labels): value}.

    Understands the escapes the format defines for label values
    (backslash, double quote, line feed), so escaping tests can assert
    on the *decoded* values instead of escape-sequence strings.
    """
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        if "{" in name_part:
            metric, rest = name_part.split("{", 1)
            body = rest.rsplit("}", 1)[0]
            labels = {}
            for m in re.finditer(r'(\w+)="((?:\\.|[^"\\])*)"', body):
                raw = m.group(2)
                labels[m.group(1)] = (raw.replace("\\n", "\n")
                                      .replace('\\"', '"')
                                      .replace("\\\\", "\\"))
            key = (metric, tuple(sorted(labels.items())))
        else:
            key = (name_part, ())
        samples[key] = value
    return samples


class TestMetricNameSanitization:
    @pytest.mark.parametrize("raw,clean", [
        ("repro_phase_seconds_total", "repro_phase_seconds_total"),
        ("eco.rectify", "eco_rectify"),
        ("weird-name with spaces", "weird_name_with_spaces"),
        ("9lives", "_9lives"),
        ("a:b", "a:b"),
        ("", "_"),
    ])
    def test_sanitize(self, raw, clean):
        assert sanitize_metric_name(raw) == clean

    def test_label_names_sanitized_in_output(self):
        clock = FakeClock()
        trace = Trace(name="t", clock=clock)
        with trace.span("root"):
            clock.t = 1.0
        text = prometheus_text(trace)
        for line in text.splitlines():
            if line.startswith("#") or "{" not in line:
                continue
            for label in re.findall(r'(\w[\w:]*)=', line):
                assert not re.search(r"[^a-zA-Z0-9_:]", label)


class TestPrometheusEscaping:
    def hostile_trace(self):
        clock = FakeClock()
        name = 'bad"label\\with\nnewline'
        trace = Trace(name=name, clock=clock)
        with trace.span("root"):
            clock.t = 1.0
        return name, trace

    def test_output_has_no_raw_newline_inside_labels(self):
        _, trace = self.hostile_trace()
        text = prometheus_text(trace)
        for line in text.splitlines():
            # every line is a complete sample or comment: a raw newline
            # in a label value would have produced a torn line
            assert line.startswith("#") or " " in line

    def test_run_name_round_trips_through_exposition(self):
        name, trace = self.hostile_trace()
        samples = parse_exposition(prometheus_text(trace))
        key = ("repro_run_info", (("name", name),))
        assert samples[key] == "1"

    def test_tag_values_escaped(self):
        clock = FakeClock()
        trace = Trace(name="t", clock=clock)
        with trace.span('evil"phase\nname'):
            clock.t = 1.0
        samples = parse_exposition(prometheus_text(trace))
        key = ("repro_phase_calls_total",
               (("phase", 'evil"phase\nname'),))
        assert samples[key] == "1"


class TestSamplerEventRoundTrip:
    @pytest.fixture
    def sampled_trace(self):
        clock = FakeClock()
        trace = Trace(name="s", clock=clock)
        with trace.span("root"):
            trace.event("obs.sample", seq=1, bdd_nodes=0)
            clock.t = 0.5
            trace.event("obs.sample", seq=2, bdd_nodes=321,
                        sat_conflicts_spent=12)
            trace.event("run.stalled", idle_s=31.5, window_s=30.0,
                        progress=7, hint="no span progress")
            clock.t = 1.0
        return trace

    @pytest.mark.parametrize("writer", [write_jsonl, write_chrome])
    def test_lossless_round_trip(self, sampled_trace, tmp_path, writer):
        path = str(tmp_path / "t.out")
        writer(sampled_trace, path)
        records = read_trace(path)
        direct = json.loads(json.dumps(sampled_trace.records()))
        events = [r for r in records if r["type"] == "event"]
        direct_events = [r for r in direct if r["type"] == "event"]
        assert [e["name"] for e in events] == [
            "obs.sample", "obs.sample", "run.stalled"]
        assert [e["tags"] for e in events] == [
            e["tags"] for e in direct_events]


class TestForwardCompat:
    RAW = {"type": "obs.v99-frob", "ts": 0.5,
           "payload": {"nested": [1, "two"]}}

    def records(self):
        clock = FakeClock()
        trace = Trace(name="f", clock=clock)
        with trace.span("root"):
            clock.t = 1.0
        return trace.records() + [dict(self.RAW)]

    def test_unknown_kind_survives_jsonl(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(self.records(), path)
        assert read_trace(path)[-1] == self.RAW

    def test_unknown_kind_survives_chrome(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome(self.records(), path)
        restored = read_trace(path)
        assert restored[-1] == self.RAW
        # and the carrier event is visibly marked as raw in the payload
        payload = chrome_payload(self.records())
        raw = [e for e in payload["traceEvents"]
               if e["cat"] == "repro.raw"]
        assert len(raw) == 1
        assert raw[0]["args"]["record"] == self.RAW


class TestAtomicWrites:
    @pytest.mark.parametrize("writer", [write_jsonl, write_chrome,
                                        write_prometheus])
    def test_no_temp_leftovers(self, sample_trace, tmp_path, writer):
        import os
        path = str(tmp_path / "out.file")
        writer(sample_trace, path)
        assert os.path.exists(path)
        assert [n for n in os.listdir(tmp_path)
                if n.startswith(".tmp-")] == []


class TestReadTrace:
    def test_unknown_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "name": "x"}\nnot json\n')
        with pytest.raises(json.JSONDecodeError):
            read_trace(str(path))
