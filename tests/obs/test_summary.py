"""Summary aggregation and rendering tests."""

from repro.obs.summary import brief_phase_lines, format_summary, summarize


def make_records():
    """A hand-built record list: root with two phases, one repeated."""
    return [
        {"type": "meta", "name": "demo",
         "counters": {"sat_conflicts_spent": 9, "fallbacks": 0},
         "degraded": True},
        {"type": "span", "id": 1, "parent": None, "name": "eco.rectify",
         "ts": 0.0, "dur": 10.0, "tags": {}, "counters": {}},
        {"type": "span", "id": 2, "parent": 1, "name": "eco.output",
         "ts": 0.0, "dur": 6.0, "tags": {"output": "a", "how": "rewire"},
         "counters": {"sat_conflicts_spent": 5, "bdd_nodes_spent": 100}},
        {"type": "span", "id": 3, "parent": 1, "name": "eco.output",
         "ts": 6.0, "dur": 3.5,
         "tags": {"output": "b", "how": "fallback"},
         "counters": {"sat_conflicts_spent": 4}},
        {"type": "span", "id": 4, "parent": 2, "name": "sat.validate",
         "ts": 1.0, "dur": 2.0, "tags": {"result": "equivalent"},
         "counters": {"sat_conflicts_spent": 5}},
        {"type": "event", "name": "run.degraded", "ts": 7.0, "span": 3,
         "tags": {"reason": "deadline"}},
    ]


class TestSummarize:
    def test_aggregation_by_name_path(self):
        summary = summarize(make_records())
        (root,) = summary.roots
        assert root.name == "eco.rectify"
        assert root.calls == 1
        (output,) = root.children
        assert output.name == "eco.output"
        assert output.calls == 2               # collapsed repeats
        assert output.seconds == 9.5
        assert output.sat_conflicts == 9
        assert output.bdd_nodes == 100
        (sat,) = output.children
        assert sat.name == "sat.validate"
        assert sat.depth == 2

    def test_coverage_is_child_fraction_of_root(self):
        summary = summarize(make_records())
        assert summary.coverage == 0.95        # 9.5 of 10.0

    def test_hot_outputs_sorted_by_time(self):
        summary = summarize(make_records())
        assert [h.output for h in summary.hot_outputs] == ["a", "b"]
        assert summary.hot_outputs[0].how == "rewire"
        assert summary.hot_outputs[0].sat_conflicts == 5

    def test_meta_flows_through(self):
        summary = summarize(make_records())
        assert summary.name == "demo"
        assert summary.degraded is True
        assert summary.counters["sat_conflicts_spent"] == 9
        assert summary.wall_seconds == 10.0

    def test_empty_records(self):
        summary = summarize([])
        assert summary.roots == []
        assert summary.wall_seconds == 0.0
        assert summary.coverage == 1.0

    def test_orphan_span_becomes_root(self):
        records = [
            {"type": "span", "id": 7, "parent": 99, "name": "stray",
             "ts": 0.0, "dur": 1.0, "tags": {}, "counters": {}},
        ]
        summary = summarize(records)
        assert [r.name for r in summary.roots] == ["stray"]


class TestFormatting:
    def test_format_summary_layout(self):
        text = format_summary(summarize(make_records()))
        assert "DEGRADED" in text
        assert "sat-conf" in text and "bdd-nodes" in text
        lines = text.splitlines()
        tree = [l for l in lines if "eco.output" in l]
        assert tree and tree[0].startswith("  eco.output")  # indented
        assert any("phase coverage : 95.0%" in l for l in lines)
        assert any("run.degraded" in l and "reason=deadline" in l
                   for l in lines)
        assert any("hottest outputs:" in l for l in lines)

    def test_event_overflow_elided(self):
        records = make_records()
        for i in range(12):
            records.append({"type": "event", "name": f"e{i}", "ts": 8.0,
                            "span": 1, "tags": {}})
        text = format_summary(summarize(records), events=8)
        assert "... 5 more" in text

    def test_brief_phase_lines(self):
        lines = brief_phase_lines(make_records(), limit=2)
        assert len(lines) == 2
        assert lines[0].startswith("eco.rectify")
        assert "sat-conf=9" in lines[1]
