"""Summary aggregation and rendering tests."""

from repro.obs.summary import brief_phase_lines, format_summary, summarize


def make_records():
    """A hand-built record list: root with two phases, one repeated."""
    return [
        {"type": "meta", "name": "demo",
         "counters": {"sat_conflicts_spent": 9, "fallbacks": 0},
         "degraded": True},
        {"type": "span", "id": 1, "parent": None, "name": "eco.rectify",
         "ts": 0.0, "dur": 10.0, "tags": {}, "counters": {}},
        {"type": "span", "id": 2, "parent": 1, "name": "eco.output",
         "ts": 0.0, "dur": 6.0, "tags": {"output": "a", "how": "rewire"},
         "counters": {"sat_conflicts_spent": 5, "bdd_nodes_spent": 100}},
        {"type": "span", "id": 3, "parent": 1, "name": "eco.output",
         "ts": 6.0, "dur": 3.5,
         "tags": {"output": "b", "how": "fallback"},
         "counters": {"sat_conflicts_spent": 4}},
        {"type": "span", "id": 4, "parent": 2, "name": "sat.validate",
         "ts": 1.0, "dur": 2.0, "tags": {"result": "equivalent"},
         "counters": {"sat_conflicts_spent": 5}},
        {"type": "event", "name": "run.degraded", "ts": 7.0, "span": 3,
         "tags": {"reason": "deadline"}},
    ]


class TestSummarize:
    def test_aggregation_by_name_path(self):
        summary = summarize(make_records())
        (root,) = summary.roots
        assert root.name == "eco.rectify"
        assert root.calls == 1
        (output,) = root.children
        assert output.name == "eco.output"
        assert output.calls == 2               # collapsed repeats
        assert output.seconds == 9.5
        assert output.sat_conflicts == 9
        assert output.bdd_nodes == 100
        (sat,) = output.children
        assert sat.name == "sat.validate"
        assert sat.depth == 2

    def test_coverage_is_child_fraction_of_root(self):
        summary = summarize(make_records())
        assert summary.coverage == 0.95        # 9.5 of 10.0

    def test_hot_outputs_sorted_by_time(self):
        summary = summarize(make_records())
        assert [h.output for h in summary.hot_outputs] == ["a", "b"]
        assert summary.hot_outputs[0].how == "rewire"
        assert summary.hot_outputs[0].sat_conflicts == 5

    def test_meta_flows_through(self):
        summary = summarize(make_records())
        assert summary.name == "demo"
        assert summary.degraded is True
        assert summary.counters["sat_conflicts_spent"] == 9
        assert summary.wall_seconds == 10.0

    def test_empty_records(self):
        summary = summarize([])
        assert summary.roots == []
        assert summary.wall_seconds == 0.0
        assert summary.coverage == 1.0

    def test_orphan_span_becomes_root(self):
        records = [
            {"type": "span", "id": 7, "parent": 99, "name": "stray",
             "ts": 0.0, "dur": 1.0, "tags": {}, "counters": {}},
        ]
        summary = summarize(records)
        assert [r.name for r in summary.roots] == ["stray"]


class TestFormatting:
    def test_format_summary_layout(self):
        text = format_summary(summarize(make_records()))
        assert "DEGRADED" in text
        assert "sat-conf" in text and "bdd-nodes" in text
        lines = text.splitlines()
        tree = [l for l in lines if "eco.output" in l]
        assert tree and tree[0].startswith("  eco.output")  # indented
        assert any("phase coverage : 95.0%" in l for l in lines)
        assert any("run.degraded" in l and "reason=deadline" in l
                   for l in lines)
        assert any("hottest outputs:" in l for l in lines)

    def test_event_overflow_elided(self):
        records = make_records()
        for i in range(12):
            records.append({"type": "event", "name": f"e{i}", "ts": 8.0,
                            "span": 1, "tags": {}})
        text = format_summary(summarize(records), events=8)
        assert "... 5 more" in text

    def test_brief_phase_lines(self):
        lines = brief_phase_lines(make_records(), limit=2)
        assert len(lines) == 2
        assert lines[0].startswith("eco.rectify")
        assert "sat-conf=9" in lines[1]


class TestUncleanRuns:
    """Rendering of runs that did not finish cleanly: degraded,
    interrupted mid-span, and quarantined with partial worker spans."""

    def test_degraded_run_names_the_reason(self):
        text = format_summary(summarize(make_records()))
        assert "DEGRADED" in text
        assert "run.degraded reason=deadline" in text

    def test_interrupted_run_renders_from_partial_records(self):
        """An interrupt leaves enclosing spans unfinished: children
        reference parent ids that never made it into the record list.
        They must surface as roots, not crash the aggregation."""
        records = [
            {"type": "meta", "name": "interrupted", "counters": {}},
            # parent id 1 (eco.rectify) never finished -> no record
            {"type": "span", "id": 2, "parent": 1, "name": "eco.output",
             "ts": 0.0, "dur": 1.0, "tags": {"output": "a"},
             "counters": {"sat_conflicts_spent": 3}},
            {"type": "span", "id": 3, "parent": 2, "name": "sat.validate",
             "ts": 0.2, "dur": 0.4, "tags": {}, "counters": {}},
        ]
        summary = summarize(records)
        (root,) = summary.roots
        assert root.name == "eco.output"
        assert [c.name for c in root.children] == ["sat.validate"]
        text = format_summary(summary)
        assert "eco.output" in text
        assert "DEGRADED" not in text
        # the unfinished output has no resolution yet
        assert summary.hot_outputs[0].how == "?"

    def quarantined_records(self):
        return [
            {"type": "meta", "name": "chaos", "degraded": True,
             "counters": {"outputs_quarantined": 2,
                          "worker_deaths": 2}},
            {"type": "span", "id": 1, "parent": None,
             "name": "eco.rectify", "ts": 0.0, "dur": 5.0, "tags": {},
             "counters": {}},
            # partial span grafted by LiveAggregator.flush_dead
            {"type": "span", "id": 2, "parent": 1, "name": "eco.worker",
             "ts": 0.5, "dur": 1.5,
             "tags": {"partial": True, "worker": "o1,o2@1"},
             "counters": {}},
            {"type": "event", "name": "worker.partial_telemetry",
             "ts": 2.0, "span": 1,
             "tags": {"worker": "o1,o2@1", "spans": 1}},
            {"type": "event", "name": "output.quarantined", "ts": 2.1,
             "span": 1, "tags": {"port": "o1",
                                 "reason": "worker died twice"}},
        ]

    def test_quarantined_run_keeps_partial_worker_spans(self):
        summary = summarize(self.quarantined_records())
        (root,) = summary.roots
        (worker,) = root.children
        assert worker.name == "eco.worker"
        assert worker.seconds == 1.5
        assert summary.degraded is True

    def test_quarantined_run_formats_events_and_banner(self):
        text = format_summary(summarize(self.quarantined_records()))
        assert "DEGRADED" in text
        assert "eco.worker" in text
        assert "output.quarantined" in text
        assert "reason=worker died twice" in text
        assert "worker.partial_telemetry" in text
        assert "outputs_quarantined=2" in text
