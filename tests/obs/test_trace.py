"""Unit tests of the span tracer: nesting, timing, counters, null mode."""

import pytest

from repro.obs.trace import NULL_TRACE, NullTrace, Trace, ensure_trace
from repro.runtime.counters import RunCounters


class FakeClock:
    """A deterministic clock advancing only when told."""

    def __init__(self):
        self.t = 100.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestSpanTree:
    def test_nesting_records_parent_ids(self):
        trace = Trace(name="t", clock=FakeClock())
        with trace.span("root") as root:
            with trace.span("child") as child:
                with trace.span("grand") as grand:
                    pass
        by_name = {s.name: s for s in trace.spans}
        assert by_name["root"].parent_id is None
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["grand"].parent_id == by_name["child"].span_id

    def test_siblings_share_parent(self):
        trace = Trace()
        with trace.span("root") as root:
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
        a, b = (s for s in trace.spans if s.name in ("a", "b"))
        assert a.parent_id == b.parent_id == root.span_id

    def test_timestamps_are_epoch_relative_and_monotonic(self):
        clock = FakeClock()
        trace = Trace(clock=clock)
        clock.advance(1.0)
        with trace.span("outer"):
            clock.advance(0.5)
            with trace.span("inner"):
                clock.advance(0.25)
        inner, outer = trace.spans  # finish order: inner first
        assert inner.name == "inner"
        assert outer.t_start == pytest.approx(1.0)
        assert inner.t_start == pytest.approx(1.5)
        assert inner.duration == pytest.approx(0.25)
        assert outer.duration == pytest.approx(0.75)
        assert trace.wall_seconds == pytest.approx(1.75)

    def test_manual_begin_finish(self):
        trace = Trace()
        sp = trace.span("session", limit=10)
        with trace.span("inside") as inner:
            pass
        assert inner.parent_id == sp.span_id
        sp.tag(nodes=42).finish()
        assert trace.spans[-1] is sp
        assert sp.tags == {"limit": 10, "nodes": 42}
        sp.finish()  # idempotent
        assert trace.spans.count(sp) == 1

    def test_exception_tags_error_and_closes_span(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("work"):
                raise ValueError("boom")
        (span,) = trace.spans
        assert span.tags["error"] == "ValueError"
        assert span.t_end is not None


class TestCounters:
    def test_span_captures_nonzero_counter_deltas(self):
        counters = RunCounters()
        trace = Trace()
        trace.set_counters(counters)
        counters.sat_conflicts_spent += 5
        with trace.span("phase"):
            counters.sat_conflicts_spent += 7
            counters.bdd_nodes_spent += 100
        (span,) = trace.spans
        assert span.counters["sat_conflicts_spent"] == 7
        assert span.counters["bdd_nodes_spent"] == 100
        # untouched counters don't clutter the delta
        assert "fallbacks" not in span.counters

    def test_unbound_trace_has_empty_counters(self):
        trace = Trace()
        with trace.span("phase"):
            pass
        assert trace.spans[0].counters == {}


class TestEvents:
    def test_event_attaches_to_open_span(self):
        trace = Trace()
        with trace.span("root") as root:
            trace.event("thing.happened", detail=1)
        (event,) = trace.events
        assert event.span_id == root.span_id
        assert event.tags == {"detail": 1}

    def test_records_interleaves_spans_and_events(self):
        clock = FakeClock()
        trace = Trace(name="run", clock=clock)
        with trace.span("root"):
            clock.advance(1.0)
            trace.event("midway")
            clock.advance(1.0)
        records = trace.records()
        assert records[0]["type"] == "meta"
        assert records[0]["name"] == "run"
        kinds = [(r["type"], r["name"]) for r in records[1:]]
        assert kinds == [("span", "root"), ("event", "midway")]


class TestNullTrace:
    def test_null_trace_records_nothing(self):
        nt = NullTrace()
        with nt.span("a", x=1) as sp:
            sp.tag(y=2)
            nt.event("e")
        assert nt.spans == []
        assert nt.events == []
        assert nt.records() == []

    def test_null_span_is_shared_and_inert(self):
        assert NULL_TRACE.span("a") is NULL_TRACE.span("b")
        assert NULL_TRACE.span("a").tags == {}

    def test_null_meta_writes_vanish(self):
        NULL_TRACE.meta.update(leak=True)
        assert "leak" not in NULL_TRACE.meta

    def test_ensure_trace(self):
        assert ensure_trace(None) is NULL_TRACE
        trace = Trace()
        assert ensure_trace(trace) is trace

    def test_enabled_flags(self):
        assert Trace().enabled is True
        assert NULL_TRACE.enabled is False
