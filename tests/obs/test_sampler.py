"""Sampler tests: timelines, stall detection, and the no-op path."""

import threading

from repro.obs.sampler import (
    RunSampler,
    SAMPLE_EVENT,
    STALL_EVENT,
    maybe_sampler,
)
from repro.obs.trace import NULL_TRACE, Trace


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class FakeCounters:
    def __init__(self):
        self.values = {}

    def as_dict(self):
        return dict(self.values)


def sample_events(trace):
    return [e for e in trace.events if e.name == SAMPLE_EVENT]


def stall_events(trace):
    return [e for e in trace.events if e.name == STALL_EVENT]


class TestSampling:
    def test_start_stop_snapshots_without_thread(self):
        trace = Trace(name="t")
        with trace.span("root"):
            sampler = RunSampler(trace, interval_s=0)
            sampler.start()
            assert sampler._thread is None
            sampler.stop()
        samples = sample_events(trace)
        assert len(samples) == 2
        assert [e.tags["seq"] for e in samples] == [1, 2]

    def test_counters_and_bdd_stats_embedded(self):
        trace = Trace(name="t")
        counters = FakeCounters()
        nodes = {"n": 0}
        clock = FakeClock()
        sampler = RunSampler(
            trace, counters=counters,
            bdd_stats=lambda: {"bdd_nodes": nodes["n"]},
            interval_s=0, clock=clock)
        with trace.span("root"):
            sampler.start()
            counters.values = {"sat_conflicts_spent": 7, "zero": 0}
            nodes["n"] = 120
            sampler.tick()
            nodes["n"] = 450
            sampler.stop()
        samples = sample_events(trace)
        series = [e.tags["bdd_nodes"] for e in samples]
        assert series == [0, 120, 450]
        assert series == sorted(series)  # monotone timeline
        assert samples[1].tags["sat_conflicts_spent"] == 7
        assert "zero" not in samples[1].tags  # zeros are elided

    def test_context_manager(self):
        trace = Trace(name="t")
        with trace.span("root"):
            with RunSampler(trace, interval_s=0):
                pass
        assert len(sample_events(trace)) == 2

    def test_stop_joins_thread_even_when_final_sample_raises(self):
        """Exception-safe teardown: a failing final sample must not
        leave the daemon thread ticking into the next run."""

        class ExplodingTrace:
            progress = 0
            enabled = True
            fail = False

            def event(self, name, **tags):
                if self.fail:
                    raise ValueError("exporter broke")

        trace = ExplodingTrace()
        before = threading.active_count()
        sampler = RunSampler(trace, interval_s=0.001)
        sampler.start()
        assert sampler._thread is not None
        trace.fail = True
        try:
            sampler.stop()
        except ValueError:
            pass  # the failure propagates, but only after the join
        assert sampler._thread is None
        assert threading.active_count() == before
        assert not [t for t in threading.enumerate()
                    if t.name == "repro-obs-sampler"]

    def test_interval_thread_runs_and_joins(self):
        trace = Trace(name="t")
        before = threading.active_count()
        with trace.span("root"):
            sampler = RunSampler(trace, interval_s=0.001)
            sampler.start()
            assert sampler._thread is not None
            assert sampler._thread.daemon
            sampler._thread.join(0.05)  # let a few ticks land
            sampler.stop()
        assert sampler._thread is None
        assert threading.active_count() == before
        assert len(sample_events(trace)) >= 2


class TestStallDetector:
    def test_fires_once_and_rearms_on_progress(self):
        clock = FakeClock()
        trace = Trace(name="t")
        sampler = RunSampler(trace, interval_s=0, stall_window_s=5.0,
                             clock=clock)
        with trace.span("root"):
            sampler.start()
            clock.t = 3.0
            sampler.tick()          # idle < window: no stall
            assert not stall_events(trace)
            clock.t = 6.0
            sampler.tick()          # idle >= window: stall fires
            clock.t = 9.0
            sampler.tick()          # still stalled: no duplicate
            assert len(stall_events(trace)) == 1
            (stall,) = stall_events(trace)
            assert stall.tags["idle_s"] >= 5.0
            assert "--deadline" in stall.tags["hint"]
            with trace.span("work"):  # span progress re-arms
                pass
            clock.t = 10.0
            sampler.tick()
            assert len(stall_events(trace)) == 1
            clock.t = 16.0
            sampler.tick()          # a second silent window fires again
            assert len(stall_events(trace)) == 2
            sampler.stop()

    def test_progress_resets_idle_clock(self):
        clock = FakeClock()
        trace = Trace(name="t")
        sampler = RunSampler(trace, interval_s=0, stall_window_s=5.0,
                             clock=clock)
        with trace.span("root"):
            sampler.start()
            for t in (2.0, 4.0, 6.0, 8.0):
                clock.t = t
                with trace.span("step"):
                    pass
                sampler.tick()
            assert not stall_events(trace)
            sampler.stop()


class TestNoopPath:
    def test_maybe_sampler_is_none_for_null_trace(self):
        assert maybe_sampler(NULL_TRACE) is None
        assert maybe_sampler(None) is None

    def test_maybe_sampler_builds_for_enabled_trace(self):
        trace = Trace(name="t")
        sampler = maybe_sampler(trace, interval_s=0)
        assert isinstance(sampler, RunSampler)

    def test_untraced_run_starts_no_thread(self):
        """The NULL_TRACE path allocates no sampler and no thread."""
        before = threading.active_count()
        assert maybe_sampler(NULL_TRACE, interval_s=0.001) is None
        assert threading.active_count() == before

    def test_sampler_emit_survives_racy_stack(self):
        """A sample lost to a concurrent span pop must not raise."""

        class RacyTrace:
            progress = 0
            enabled = True

            def event(self, name, **tags):
                raise IndexError("pop from empty list")

        sampler = RunSampler(RacyTrace(), interval_s=0)
        sampler.sample()  # swallowed; the sample is simply dropped
