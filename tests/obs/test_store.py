"""Run-store tests: persistence, refs, diffing, regression detection."""

import json
import os

import pytest

from repro.eco.config import EcoConfig
from repro.eco.engine import rectify
from repro.obs import Trace
from repro.obs.store import (
    MetricDelta,
    RegressionThresholds,
    RunRecord,
    RunStore,
    RunStoreError,
    check_regressions,
    diff_records,
    new_run_id,
    record_from_result,
)
from repro.runtime.faultinject import FaultInjector, SITE_CLOCK
from repro.workloads.figures import example1_circuits


def make_record(run_id="r1", wall=1.0, outcome="ok", degraded=False,
                counters=None, **kwargs):
    return RunRecord(
        run_id=run_id, kind="test", name="case", started_at=100.0,
        wall_seconds=wall, outcome=outcome, degraded=degraded,
        counters=dict(counters or {}), **kwargs)


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "runs"))


class TestRunRecord:
    def test_json_round_trip(self):
        rec = make_record(counters={"sat_conflicts_spent": 5},
                          samples=[{"seq": 1, "bdd_nodes": 10}])
        back = RunRecord.from_json(rec.to_json())
        assert back == rec

    def test_unknown_keys_preserved(self):
        payload = make_record().to_json()
        payload["future_field"] = {"nested": [1, 2]}
        back = RunRecord.from_json(payload)
        assert back.extra == {"future_field": {"nested": [1, 2]}}
        assert back.to_json()["future_field"] == {"nested": [1, 2]}

    def test_tolerates_minimal_payload(self):
        back = RunRecord.from_json({"run_id": "x"})
        assert back.run_id == "x"
        assert back.outcome == "?"
        assert back.counters == {}

    def test_run_ids_sortable_and_unique(self):
        ids = {new_run_id(1700000000.0) for _ in range(32)}
        assert len(ids) == 32
        assert all(i.startswith("2023") for i in ids)


class TestRunStore:
    def test_publish_and_load(self, store):
        store.publish(make_record("a" * 8, wall=1.0))
        store.publish(make_record("b" * 8, wall=2.0))
        records = store.load_all()
        assert [r.run_id for r in records] == ["a" * 8, "b" * 8]
        assert store.skipped == 0
        entries = store.list()
        assert [e["run_id"] for e in entries] == ["a" * 8, "b" * 8]

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_STORE", str(tmp_path / "env-store"))
        store = RunStore()
        store.publish(make_record())
        assert os.path.exists(tmp_path / "env-store" / "records.jsonl")

    def test_truncated_line_skipped(self, store):
        store.publish(make_record("a" * 8))
        store.publish(make_record("b" * 8))
        with open(store.records_path, "a", encoding="utf-8") as fh:
            fh.write('{"run_id": "tru')  # a killed writer's leftovers
        records = store.load_all()
        assert [r.run_id for r in records] == ["a" * 8, "b" * 8]
        assert store.skipped == 1

    def test_index_rebuilt_when_stale(self, store):
        store.publish(make_record("a" * 8))
        os.remove(store.index_path)
        entries = store.list()
        assert [e["run_id"] for e in entries] == ["a" * 8]
        # and the rebuild was persisted
        with open(store.index_path, encoding="utf-8") as fh:
            assert len(json.load(fh)["runs"]) == 1

    def test_resolve_refs(self, store):
        store.publish(make_record("2026-aaa1"))
        store.publish(make_record("2026-bbb2"))
        store.publish(make_record("2027-ccc3"))
        assert store.resolve("last").run_id == "2027-ccc3"
        assert store.resolve("first").run_id == "2026-aaa1"
        assert store.resolve("-2").run_id == "2026-bbb2"
        assert store.resolve("2026-b").run_id == "2026-bbb2"

    def test_resolve_errors(self, store):
        with pytest.raises(RunStoreError, match="empty"):
            store.resolve("last")
        store.publish(make_record("2026-aaa1"))
        store.publish(make_record("2026-bbb2"))
        with pytest.raises(RunStoreError, match="ambiguous"):
            store.resolve("2026")
        with pytest.raises(RunStoreError, match="no run matches"):
            store.resolve("zzz")
        with pytest.raises(RunStoreError, match="only 2"):
            store.resolve("-3")

    def test_no_temp_leftovers(self, store, tmp_path):
        store.publish(make_record())
        leftovers = [n for n in os.listdir(store.root)
                     if n.startswith(".tmp-")]
        assert leftovers == []

    def test_truncated_index_rebuilt_with_warning(self, store, caplog):
        store.publish(make_record("a" * 8))
        store.publish(make_record("b" * 8))
        with open(store.index_path, "w", encoding="utf-8") as fh:
            fh.write('{"version": 1, "runs": [{"run_id"')  # killed writer
        with caplog.at_level("WARNING", logger="repro.obs"):
            entries = store.list()
        assert [e["run_id"] for e in entries] == ["a" * 8, "b" * 8]
        assert any("index" in r.message for r in caplog.records)
        # the rebuild was persisted: the next read is warning-free
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.obs"):
            assert len(store.list()) == 2
        assert not caplog.records

    def test_garbage_index_rebuilt_with_warning(self, store, caplog):
        store.publish(make_record("a" * 8))
        with open(store.index_path, "w", encoding="utf-8") as fh:
            fh.write('"not an index"')  # valid JSON, wrong shape
        with caplog.at_level("WARNING", logger="repro.obs"):
            entries = store.list()
        assert [e["run_id"] for e in entries] == ["a" * 8]
        assert any("index" in r.message for r in caplog.records)


class TestRecover:
    def test_clean_store_reports_nothing_to_do(self, store):
        store.publish(make_record("a" * 8))
        report = store.recover()
        assert report["records"] == 1
        assert report["skipped_lines"] == 0
        assert report["salvaged_fragment"] is None
        assert report["swept_tmp"] == 0
        assert report["resumable"] == []

    def test_salvages_torn_records_tail(self, store, caplog):
        store.publish(make_record("a" * 8))
        with open(store.records_path, "a", encoding="utf-8") as fh:
            fh.write('{"run_id": "tor')
        with caplog.at_level("WARNING", logger="repro.obs"):
            report = store.recover()
        assert report["records"] == 1
        assert report["salvaged_fragment"].startswith('{"run_id"')
        # the torn tail is gone from disk, not just skipped
        with open(store.records_path, encoding="utf-8") as fh:
            assert fh.read().count("\n") == 1
        assert store.recover()["salvaged_fragment"] is None

    def test_sweeps_orphaned_tmp_files(self, store):
        store.publish(make_record("a" * 8))
        orphan = os.path.join(store.root, ".tmp-orphan-123")
        with open(orphan, "w", encoding="utf-8") as fh:
            fh.write("half a write")
        report = store.recover()
        assert report["swept_tmp"] == 1
        assert not os.path.exists(orphan)

    def test_lists_resumable_journals(self, store):
        from repro.eco.checkpoint import RunJournal
        from repro.eco.config import EcoConfig

        journal = RunJournal("r-live", store_root=store.root)
        journal.start("adder", EcoConfig(), ["o1"])
        report = store.recover()
        assert [e["run_id"] for e in report["resumable"]] == ["r-live"]


class TestDiff:
    def test_wall_and_counters(self):
        base = make_record(wall=1.0, counters={"sat_conflicts_spent": 100})
        cur = make_record(wall=2.0, counters={"sat_conflicts_spent": 150,
                                              "fallbacks": 1})
        deltas = {d.metric: d for d in diff_records(base, cur)}
        assert deltas["wall_seconds"].delta == pytest.approx(1.0)
        assert deltas["wall_seconds"].pct == pytest.approx(100.0)
        assert deltas["counters.sat_conflicts_spent"].delta == 50
        assert deltas["counters.fallbacks"].current == 1

    def test_all_zero_counters_elided(self):
        deltas = diff_records(make_record(counters={"x": 0}),
                              make_record(counters={"x": 0}))
        assert [d.metric for d in deltas] == ["wall_seconds"]

    def test_pct_none_on_zero_baseline(self):
        assert MetricDelta("m", 0.0, 5.0).pct is None


class TestRegressions:
    def test_identical_runs_pass(self):
        rec = make_record(wall=1.0, counters={"sat_conflicts_spent": 500,
                                              "bdd_nodes_spent": 10000})
        assert check_regressions(rec, rec) == []

    def test_needs_both_pct_and_floor(self):
        base = make_record(wall=0.01)
        # +300% but under the 0.1s absolute floor: noise, not regression
        assert check_regressions(base, make_record(wall=0.04)) == []
        # over the floor but under 25%: also noise
        base = make_record(wall=10.0)
        assert check_regressions(base, make_record(wall=11.0)) == []
        # both: regression
        regs = check_regressions(base, make_record(wall=20.0))
        assert [r.metric for r in regs] == ["wall_seconds"]

    def test_counter_thresholds(self):
        base = make_record(counters={"sat_conflicts_spent": 1000,
                                     "bdd_nodes_spent": 50000})
        cur = make_record(counters={"sat_conflicts_spent": 1200,
                                    "bdd_nodes_spent": 60000})
        metrics = {r.metric for r in check_regressions(base, cur)}
        assert metrics == {"counters.sat_conflicts_spent",
                           "counters.bdd_nodes_spent"}

    def test_custom_thresholds(self):
        base = make_record(wall=1.0)
        cur = make_record(wall=1.2)
        assert check_regressions(base, cur) == []
        tight = RegressionThresholds(wall_pct=5.0, wall_floor_s=0.05)
        assert len(check_regressions(base, cur, tight)) == 1

    def test_outcome_and_degradation_zero_tolerance(self):
        base = make_record(outcome="ok")
        cur = make_record(outcome="degraded", degraded=True,
                          counters={"fallbacks": 2,
                                    "degraded_outputs": 1})
        metrics = {r.metric for r in check_regressions(base, cur)}
        assert metrics == {"outcome", "degraded", "counters.fallbacks",
                           "counters.degraded_outputs"}

    def test_improvement_is_not_regression(self):
        base = make_record(wall=10.0, outcome="degraded", degraded=True,
                           counters={"fallbacks": 2})
        cur = make_record(wall=1.0, outcome="ok")
        assert check_regressions(base, cur) == []


def seconds_histogram(p95, count=20):
    return {"count": count, "sum": p95 * count, "p50": p95 / 2,
            "p95": p95, "p99": p95 * 1.2,
            "buckets": [[p95, count], ["+Inf", count]]}


class TestHistogramPersistence:
    def test_histograms_round_trip(self):
        rec = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.01)})
        back = RunRecord.from_json(json.loads(json.dumps(rec.to_json())))
        assert back.histograms == rec.histograms

    def test_diff_reports_p95_for_shared_families(self):
        base = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.01),
            "repro_only_base_seconds": seconds_histogram(0.01)})
        cur = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.02),
            "repro_only_cur_seconds": seconds_histogram(0.01)})
        deltas = {d.metric: d for d in diff_records(base, cur)}
        d = deltas["histograms.repro_sat_call_seconds.p95"]
        assert d.delta == pytest.approx(0.01)
        assert not any("only_base" in m or "only_cur" in m
                       for m in deltas)

    def test_p95_regression_needs_pct_and_floor(self):
        base = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.10)})
        # +40%: under the 50% threshold
        cur = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.14)})
        assert check_regressions(base, cur) == []
        # +100% but only 20ms absolute: under the 50ms floor
        small = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.02)})
        worse = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.04)})
        assert check_regressions(small, worse) == []
        # both exceeded: regression, with a readable message
        cur = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.30)})
        (reg,) = check_regressions(base, cur)
        assert reg.metric == "histograms.repro_sat_call_seconds.p95"
        assert "300.0ms" in reg.message

    def test_p95_gate_ignores_non_latency_families(self):
        base = make_record(histograms={
            "repro_bdd_session_nodes": seconds_histogram(100.0)})
        cur = make_record(histograms={
            "repro_bdd_session_nodes": seconds_histogram(9000.0)})
        assert check_regressions(base, cur) == []

    def test_p95_improvement_is_not_regression(self):
        base = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.30)})
        cur = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.01)})
        assert check_regressions(base, cur) == []

    def test_custom_p95_thresholds(self):
        base = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.10)})
        cur = make_record(histograms={
            "repro_sat_call_seconds": seconds_histogram(0.14)})
        tight = RegressionThresholds(p95_pct=10.0, p95_floor_s=0.01)
        assert len(check_regressions(base, cur, tight)) == 1


class TestRecordFromResult:
    def run_case(self, injector=None, metrics=None):
        impl, spec = example1_circuits(width=2)
        config = EcoConfig(num_samples=8)
        trace = Trace(name=impl.name, metrics=metrics)
        result = rectify(impl, spec, config, injector=injector,
                         trace=trace)
        return record_from_result(result, trace=trace, kind="test",
                                  config=config)

    def test_engine_record_contents(self):
        rec = self.run_case()
        assert rec.kind == "test"
        assert rec.outcome == "ok"
        assert rec.counters["sat_validations"] > 0
        assert rec.config["num_samples"] == 8
        assert not rec.strict
        assert any(row["phase"] == "eco.rectify" for row in rec.phases)
        assert rec.resolution  # per-output outcomes tallied
        # the sampler's timeline rode along, bdd nodes non-decreasing
        assert len(rec.samples) >= 2
        series = [s.get("bdd_nodes", 0) for s in rec.samples]
        assert series == sorted(series)
        assert series[-1] > 0
        assert rec.events.get("obs.sample", 0) >= 2

    def test_injected_clock_jump_inflates_wall(self):
        injector = FaultInjector()
        injector.arm(SITE_CLOCK, 2, payload=50.0)
        slow = self.run_case(injector=injector)
        assert slow.wall_seconds > 49.0
        base = self.run_case()
        regs = check_regressions(base, slow)
        assert any(r.metric == "wall_seconds" for r in regs)

    def test_sample_timeline_is_run_relative(self):
        """Sample timestamps rebase to the first sample, so records
        from different processes (and different trace epochs) compare
        like for like."""
        rec = self.run_case()
        assert len(rec.samples) >= 2
        assert rec.samples[0]["ts"] == 0.0
        ts = [s["ts"] for s in rec.samples]
        assert ts == sorted(ts)

    def test_trace_registry_histograms_persist(self):
        from repro.obs.metrics import MetricsRegistry
        rec = self.run_case(metrics=MetricsRegistry())
        assert "repro_sat_call_seconds" in rec.histograms
        snap = rec.histograms["repro_sat_call_seconds"]
        assert snap["count"] > 0
        assert snap["buckets"][-1][0] == "+Inf"
        assert snap["p95"] >= snap["p50"] > 0

    def test_untraced_result_still_records(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        rec = record_from_result(result, kind="test")
        assert rec.samples == []
        assert rec.phases == []
        assert rec.wall_seconds == pytest.approx(
            result.runtime_seconds, abs=1e-6)
