"""``repro watch`` rendering: pure functions, both frame sources."""

from repro.obs.metrics import MetricsRegistry, parse_prometheus_text, \
    render_prometheus
from repro.obs.store import RunRecord
from repro.obs.watch_cli import (
    SPARK_CHARS,
    progress_bar,
    render_histograms,
    render_live,
    render_phase_rows,
    render_record,
    render_sample_sparks,
    sparkline,
)


class TestSparkline:
    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_the_floor(self):
        assert sparkline([5, 5, 5]) == SPARK_CHARS[0] * 3

    def test_scaling_spans_the_charset(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]
        assert len(line) == 8

    def test_long_series_downsample_to_width(self):
        assert len(sparkline(range(1000), width=40)) == 40


class TestProgressBar:
    def test_zero_total_is_empty_frame(self):
        assert progress_bar(0, 0) == "[" + " " * 24 + "]"

    def test_partial_and_full(self):
        assert progress_bar(1, 2, width=4) == "[##--] 1/2"
        assert progress_bar(2, 2, width=4) == "[####] 2/2"
        # overfull clamps instead of overflowing the frame
        assert progress_bar(5, 2, width=4).startswith("[####]")


def make_record(**overrides):
    fields = dict(
        run_id="20260807-000000-deadbeef",
        kind="eco",
        name="example1",
        started_at=1.0,
        wall_seconds=2.5,
        outcome="ok",
        resolution={"rewire": 2, "unresolved": 1},
        phases=[
            {"phase": "eco.rectify", "calls": 1, "seconds": 2.0,
             "sat_conflicts": 50, "bdd_nodes": 100},
            {"phase": "eco.rectify/eco.output", "calls": 3,
             "seconds": 1.5, "sat_conflicts": 50, "bdd_nodes": 100},
        ],
        samples=[{"ts": 0.0, "sat_conflicts_spent": 10},
                 {"ts": 1.0, "sat_conflicts_spent": 50}],
        histograms={"repro_sat_call_seconds": {
            "count": 9, "sum": 0.1, "p50": 0.002, "p95": 0.01,
            "p99": 0.02, "buckets": []}},
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestRenderRecord:
    def test_full_frame_has_every_section(self):
        frame = render_record(make_record())
        assert "run 20260807-000000-deadbeef" in frame
        assert "outcome=ok" in frame
        assert "[################--------] 2/3" in frame
        assert "rewire:2" in frame
        assert "eco.rectify" in frame
        assert "  eco.output" in frame               # indented child
        assert "sat_conflicts_spent" in frame
        assert "repro_sat_call_seconds" in frame
        assert "p95=10.0ms" in frame

    def test_degraded_banner(self):
        frame = render_record(make_record(outcome="degraded",
                                          degraded=True))
        assert "DEGRADED" in frame

    def test_sparse_record_renders_header_only(self):
        frame = render_record(make_record(
            resolution={}, phases=[], samples=[], histograms={}))
        assert "run 20260807-000000-deadbeef" in frame
        assert "phases:" not in frame
        assert "latency percentiles:" not in frame


class TestRenderHelpers:
    def test_phase_rows_elide_overflow(self):
        phases = [{"phase": f"p{i}", "calls": 1, "seconds": 1.0,
                   "sat_conflicts": 0} for i in range(20)]
        rows = render_phase_rows(phases, limit=3)
        assert len(rows) == 4
        assert rows[-1] == "  ... 17 more phases"

    def test_sample_sparks_skip_all_zero_series(self):
        samples = [{"bdd_nodes": 0, "plan_evals": 3},
                   {"bdd_nodes": 0, "plan_evals": 9}]
        lines = render_sample_sparks(samples)
        assert len(lines) == 1
        assert "plan_evals" in lines[0]

    def test_histograms_skip_empty_series(self):
        lines = render_histograms({
            "repro_empty_seconds": {"count": 0},
            "repro_bdd_session_nodes": {"count": 3, "p50": 512,
                                        "p95": 2048, "p99": 4096}})
        assert len(lines) == 1
        assert "p95=2048" in lines[0]                # sizes: no ms unit


class TestRenderLive:
    def scraped_families(self):
        reg = MetricsRegistry()
        reg.counter("repro_counter_total",
                    {"counter": "sat_validations"}).inc(12)
        h = reg.histogram("repro_sat_call_seconds", help="SAT latency")
        for _ in range(4):
            h.observe(0.003)
        return parse_prometheus_text(render_prometheus(reg))

    def test_live_frame_sections(self):
        health = {"status": "ok", "run": "demo", "progress": 7,
                  "phase": ["eco.rectify", "eco.output"],
                  "workers": {"o1@1": {"open_spans": 2,
                                       "closed_spans": 5,
                                       "age_s": 0.1}}}
        history = {}
        frame = render_live(health, self.scraped_families(), history)
        assert "run demo  status=ok  progress=7" in frame
        assert "phase    eco.rectify > eco.output" in frame
        assert "worker o1@1: 2 open / 5 closed spans" in frame
        assert "sat_validations" in frame
        assert "repro_sat_call_seconds" in frame
        assert history["sat_validations"] == [12.0]

    def test_history_accumulates_only_on_change(self):
        health = {"status": "ok"}
        families = self.scraped_families()
        history = {}
        render_live(health, families, history)
        render_live(health, families, history)       # unchanged scrape
        assert history["sat_validations"] == [12.0]

    def test_stalled_banner_and_idle_phase(self):
        frame = render_live({"status": "stalled", "stalled": True,
                             "phase": []}, {}, {})
        assert "(idle)" in frame
        assert "STALLED" in frame
