"""Verdict parity of :class:`IncrementalValidator` with the legacy path.

The incremental assumption-based validator is a pure performance
device: on every candidate it must return exactly the verdict the
legacy copy-and-re-encode :func:`validate_rewire` returns — including
rejections for topological-constraint and acyclicity violations — and
any patched circuit it materializes must be functionally identical to
the legacy one.  The property tests below drive both validators with
the same randomized circuits, pins and rewire ops and compare them
check by check; the fault-injection tests confirm budgets, escalation
and strict mode behave identically when the supervised solver runs
through the incremental miter (the default since
``EcoConfig.incremental_validate`` landed).
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cec.equivalence import check_equivalence
from repro.errors import ResourceBudgetExceeded, SatBudgetExceeded
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.simulate import evaluate_outputs
from repro.netlist.traverse import topological_order
from repro.runtime import (
    FAULT_EXHAUST,
    FAULT_UNKNOWN,
    FaultInjector,
    RunCounters,
    SITE_SAT,
)
from repro.runtime.supervisor import RunSupervisor
from repro.eco.config import EcoConfig
from repro.eco.engine import rectify
from repro.eco.incremental import IncrementalValidator
from repro.eco.patch import RewireOp
from repro.eco.validate import validate_rewire
from tests.conftest import make_random_circuit


def mutate(spec, seed):
    """An acyclic single-pin corruption of ``spec`` (or None)."""
    impl = spec.copy(name="impl")
    rng = random.Random(seed)
    names = topological_order(impl)
    k = rng.randrange(len(names))
    gate = impl.gates[names[k]]
    idx = rng.randrange(len(gate.fanins))
    # only upstream nets keep the mutated circuit acyclic
    pool = [n for n in list(impl.inputs) + names[:k]
            if n != gate.fanins[idx]]
    if not pool:
        return None
    impl.rewire_pin(Pin.gate(names[k], idx), rng.choice(pool))
    return impl


def failing_outputs(impl, spec):
    """Exhaustively compared failing ports (inputs are few by design)."""
    failing = []
    for bits in itertools.product([False, True], repeat=len(spec.inputs)):
        assignment = dict(zip(spec.inputs, bits))
        got = evaluate_outputs(impl, assignment)
        want = evaluate_outputs(spec, assignment)
        for port in spec.outputs:
            if got[port] != want[port] and port not in failing:
                failing.append(port)
    return failing


def random_pins(impl, rng, count=3):
    pins = []
    gate_names = list(impl.gates)
    for _ in range(count):
        gname = rng.choice(gate_names)
        pins.append(Pin.gate(gname, rng.randrange(
            len(impl.gates[gname].fanins))))
    return list(dict.fromkeys(pins))


def random_ops(impl, spec, pins, rng, count=2):
    ops = []
    impl_nets = list(impl.inputs) + list(impl.gates)
    spec_nets = list(spec.inputs) + list(spec.gates)
    for _ in range(count):
        from_spec = bool(rng.getrandbits(1))
        source = rng.choice(spec_nets if from_spec else impl_nets)
        ops.append(RewireOp(pin=rng.choice(pins), source_net=source,
                            from_spec=from_spec))
    return ops


def assert_same_outcome(impl, spec, legacy, incremental):
    assert incremental.valid == legacy.valid
    assert incremental.fixed == legacy.fixed
    assert incremental.unknown == legacy.unknown
    if legacy.valid:
        same = check_equivalence(legacy.patched, incremental.patched)
        assert same.equivalent is True


class TestVerdictParity:
    @given(seed=st.integers(min_value=0, max_value=3000))
    @settings(max_examples=25, deadline=None)
    def test_random_candidates_match_legacy(self, seed):
        spec = make_random_circuit(seed, n_inputs=4, n_gates=15)
        impl = mutate(spec, seed + 1)
        if impl is None:
            return
        failing = failing_outputs(impl, spec)
        if not failing:
            return
        rng = random.Random(seed + 2)
        pins = random_pins(impl, rng) + [Pin.output(failing[0])]
        validator = IncrementalValidator(impl, spec, pins)
        for trial in range(4):
            ops = random_ops(impl, spec, pins, rng,
                             count=rng.randrange(1, 3))
            assert validator.covers(ops)
            legacy = validate_rewire(impl, spec, ops, failing, {})
            incremental = validator.validate(ops, failing, {})
            assert_same_outcome(impl, spec, legacy, incremental)

    def test_known_fix_accepted_by_both(self):
        spec = Circuit("spec")
        a, b, c = spec.add_inputs(["a", "b", "c"])
        g1 = spec.and_(a, b, name="g1")
        spec.set_output("o", spec.xor(g1, c, name="g2"))
        impl = Circuit("impl")
        a, b, c = impl.add_inputs(["a", "b", "c"])
        h1 = impl.or_(a, b, name="h1")
        impl.set_output("o", impl.xor(h1, c, name="h2"))
        ops = [RewireOp(pin=Pin.gate("h2", 0), source_net="g1",
                        from_spec=True)]
        validator = IncrementalValidator(impl, spec,
                                         [Pin.gate("h2", 0)])
        legacy = validate_rewire(impl, spec, ops, ["o"], {})
        incremental = validator.validate(ops, ["o"], {})
        assert legacy.valid and incremental.valid
        assert_same_outcome(impl, spec, legacy, incremental)
        assert check_equivalence(incremental.patched, spec).equivalent \
            is True

    def test_covers_rejects_unregistered_pins_and_sources(self):
        spec = make_random_circuit(21, n_inputs=4, n_gates=12)
        impl = mutate(spec, 22)
        gname = list(impl.gates)[0]
        pin = Pin.gate(gname, 0)
        validator = IncrementalValidator(impl, spec, [pin])
        other = Pin.gate(list(impl.gates)[1], 0)
        assert not validator.covers(
            [RewireOp(pin=other, source_net=impl.inputs[0])])
        assert not validator.covers(
            [RewireOp(pin=pin, source_net="no-such-net")])
        assert not validator.covers(
            [RewireOp(pin=pin, source_net="no-such-net",
                      from_spec=True)])
        assert validator.covers(
            [RewireOp(pin=pin, source_net=impl.inputs[0])])

    def test_counts_incremental_solves(self):
        spec = make_random_circuit(0, n_inputs=4, n_gates=12)
        impl = mutate(spec, 1)
        failing = failing_outputs(impl, spec)
        assert failing  # seed chosen so the mutation is visible
        counters = RunCounters()
        pin = Pin.output(failing[0])
        validator = IncrementalValidator(impl, spec, [pin],
                                         counters=counters)
        validator.validate(
            [RewireOp(pin=pin, source_net=spec.outputs[failing[0]],
                      from_spec=True)],
            failing, {})
        assert counters.incremental_solves >= 1


class TestSupervisedIncremental:
    """Budget exhaustion and degradation through the incremental miter.

    ``EcoConfig.incremental_validate`` defaults to on, so these drive
    the whole engine: fault payloads land inside the persistent
    incremental solver exactly as they used to land in the per-candidate
    checkers.
    """

    def single_bug(self):
        spec = Circuit("spec")
        a, b, c = spec.add_inputs(["a", "b", "c"])
        g1 = spec.and_(a, b, name="g1")
        spec.set_output("o", spec.xor(g1, c, name="g2"))
        impl = Circuit("impl")
        a, b, c = impl.add_inputs(["a", "b", "c"])
        h1 = impl.or_(a, b, name="h1")
        impl.set_output("o", impl.xor(h1, c, name="h2"))
        return impl, spec

    def test_unknown_streak_degrades_but_verifies(self):
        impl, spec = self.single_bug()
        injector = FaultInjector().arm(
            SITE_SAT, range(1, 301), payload=FAULT_UNKNOWN)
        result = rectify(impl, spec, EcoConfig(num_samples=8),
                         injector=injector)
        # an all-UNKNOWN solver forces the degraded fallback path, so
        # the incremental miter must not be credited with any verdicts
        assert result.counters.sat_unknowns > 0
        assert result.counters.fallbacks >= 1
        assert check_equivalence(result.patched, spec).equivalent is True

    def test_budget_exhaustion_strict_raises(self):
        impl, spec = self.single_bug()
        injector = FaultInjector().arm(SITE_SAT, 1, payload=FAULT_EXHAUST)
        with pytest.raises(SatBudgetExceeded):
            rectify(impl, spec,
                    EcoConfig(num_samples=8, degrade_on_budget=False),
                    injector=injector)

    def test_budget_exhaustion_degrades_gracefully(self):
        impl, spec = self.single_bug()
        injector = FaultInjector().arm(SITE_SAT, 1, payload=FAULT_EXHAUST)
        result = rectify(impl, spec, EcoConfig(num_samples=8),
                         injector=injector)
        assert result.degraded is True
        assert check_equivalence(result.patched, spec).equivalent is True

    def test_supervisor_drives_validator_directly(self):
        impl, spec = self.single_bug()
        run = RunSupervisor.from_config(EcoConfig(total_sat_budget=10_000))
        validator = IncrementalValidator(impl, spec,
                                         [Pin.gate("h2", 0)],
                                         counters=run.counters)
        ops = [RewireOp(pin=Pin.gate("h2", 0), source_net="g1",
                        from_spec=True)]
        outcome = validator.validate(ops, ["o"], {}, run=run)
        assert outcome.valid
        assert run.counters.sat_conflicts_spent >= 0
        assert run.counters.incremental_solves >= 1


class TestEngineParity:
    """Whole-engine results with the incremental validator on vs off."""

    @pytest.mark.parametrize("seed", [4, 8])
    def test_rectify_matches_legacy_validator_path(self, seed):
        spec = make_random_circuit(seed, n_inputs=4, n_gates=14)
        impl = mutate(spec, seed + 100)
        assert impl is not None
        assert failing_outputs(impl, spec)  # seeds chosen to be visible
        fast = rectify(impl, spec, EcoConfig(num_samples=16, seed=9))
        slow = rectify(impl, spec,
                       EcoConfig(num_samples=16, seed=9,
                                 incremental_validate=False))
        assert check_equivalence(fast.patched, spec).equivalent is True
        assert check_equivalence(slow.patched, spec).equivalent is True
        assert sorted(fast.per_output) == sorted(slow.per_output)
        assert fast.counters.incremental_solves > 0
        assert slow.counters.incremental_solves == 0
