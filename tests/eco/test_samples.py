"""Tests for error-domain sample collection."""

import random

import pytest

from repro.eco.samples import (
    collect_error_samples,
    sat_error_samples,
    simulation_error_samples,
    uniform_samples,
)
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import evaluate_outputs


def buggy_pair():
    """impl: o = a | b ; spec: o = a & b — error domain is a != b."""
    impl = Circuit("impl")
    impl.add_inputs(["a", "b"])
    impl.set_output("o", impl.or_("a", "b"))
    spec = Circuit("spec")
    spec.add_inputs(["a", "b"])
    spec.set_output("o", spec.and_("a", "b"))
    return impl, spec


def rare_error_pair():
    """Error only on the single assignment a=b=c=d=1."""
    impl = Circuit("impl")
    impl.add_inputs(list("abcd"))
    impl.set_output("o", impl.const0())
    spec = Circuit("spec")
    spec.add_inputs(list("abcd"))
    spec.set_output("o", spec.and_("a", "b", "c", "d"))
    return impl, spec


def in_error_domain(impl, spec, sample, port="o") -> bool:
    iv = evaluate_outputs(impl, {n: sample[n] for n in impl.inputs})
    sv = evaluate_outputs(spec, {n: sample[n] for n in spec.inputs})
    return iv[port] != sv[port]


class TestSimulationSamples:
    def test_samples_are_errors(self):
        impl, spec = buggy_pair()
        rng = random.Random(0)
        samples = simulation_error_samples(impl, spec, "o", 4, rng)
        assert samples
        for s in samples:
            assert in_error_domain(impl, spec, s)

    def test_samples_distinct(self):
        impl, spec = buggy_pair()
        samples = simulation_error_samples(impl, spec, "o", 8,
                                           random.Random(1))
        keys = {tuple(sorted(s.items())) for s in samples}
        assert len(keys) == len(samples)
        assert len(samples) == 2  # the error domain has exactly 2 points


class TestSatSamples:
    def test_finds_rare_errors(self):
        impl, spec = rare_error_pair()
        samples = sat_error_samples(impl, spec, "o", 3)
        assert len(samples) == 1  # only one error assignment exists
        assert in_error_domain(impl, spec, samples[0])

    def test_respects_known_blocking(self):
        impl, spec = buggy_pair()
        first = sat_error_samples(impl, spec, "o", 1)
        second = sat_error_samples(impl, spec, "o", 1, known=first)
        assert second and second[0] != first[0]

    def test_exhausts_error_domain(self):
        impl, spec = buggy_pair()
        samples = sat_error_samples(impl, spec, "o", 10)
        assert len(samples) == 2


class TestCollect:
    def test_error_biased_collection(self):
        impl, spec = buggy_pair()
        samples = collect_error_samples(impl, spec, "o", 2,
                                        random.Random(3), error_bias=1.0)
        assert len(samples) == 2
        assert all(in_error_domain(impl, spec, s) for s in samples)

    def test_pads_with_uniform_when_errors_scarce(self):
        impl, spec = rare_error_pair()
        samples = collect_error_samples(impl, spec, "o", 6,
                                        random.Random(3), error_bias=1.0)
        assert len(samples) == 6
        assert sum(in_error_domain(impl, spec, s) for s in samples) == 1

    def test_mixed_bias(self):
        impl, spec = buggy_pair()
        samples = collect_error_samples(impl, spec, "o", 4,
                                        random.Random(3), error_bias=0.5)
        assert len(samples) == 4
        errors = sum(in_error_domain(impl, spec, s) for s in samples)
        assert errors >= 2

    def test_samples_cover_all_inputs(self):
        impl, spec = buggy_pair()
        for s in collect_error_samples(impl, spec, "o", 3,
                                       random.Random(0)):
            assert set(s) >= set(impl.inputs)


def test_uniform_samples_distinct():
    out = uniform_samples(["a", "b", "c"], 6, random.Random(0))
    keys = {tuple(sorted(s.items())) for s in out}
    assert len(keys) == len(out) == 6


class TestDiversify:
    def test_subset_size(self):
        from repro.eco.samples import diversify_samples
        inputs = ["a", "b", "c"]
        pool = [{"a": bool(k & 1), "b": bool(k & 2), "c": bool(k & 4)}
                for k in range(8)]
        subset = diversify_samples(pool, 3, inputs)
        assert len(subset) == 3
        assert all(s in pool for s in subset)

    def test_small_pool_passthrough(self):
        from repro.eco.samples import diversify_samples
        pool = [{"a": True}, {"a": False}]
        assert diversify_samples(pool, 5, ["a"]) == pool

    def test_spreads_hamming_distance(self):
        from repro.eco.samples import diversify_samples
        inputs = [f"x{i}" for i in range(6)]
        zero = {n: False for n in inputs}
        ones = {n: True for n in inputs}
        near_zero = dict(zero, x0=True)
        pool = [zero, near_zero, ones]
        subset = diversify_samples(pool, 2, inputs)
        # the farthest point from the anchor wins over the near one
        assert subset == [zero, ones]

    def test_engine_accepts_diversify_config(self):
        from repro.eco.config import EcoConfig
        from repro.eco.engine import rectify
        from repro.cec.equivalence import check_equivalence
        from repro.workloads.figures import example1_circuits
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, sample_diversify=True))
        assert check_equivalence(result.patched, spec).equivalent is True
