"""Tests for rewiring-choice selection (Xi(c), Example 2)."""

import itertools

import pytest

from repro.bdd.manager import BddManager
from repro.eco.choices import (
    default_cost,
    enumerate_rewiring_choices,
    make_clone_aware_cost,
)
from repro.eco.rewiring import RewireCandidate
from repro.eco.sampling import SamplingDomain
from repro.netlist.circuit import Circuit, Pin
from repro.workloads.figures import example1_circuits


def full_domain(circuit):
    inputs = list(circuit.inputs)
    samples = [dict(zip(inputs, bits))
               for bits in itertools.product([False, True],
                                             repeat=len(inputs))]
    return SamplingDomain(BddManager(), samples, inputs)


def example2_setup():
    """Pins {q_k select, q_{n+k} select} with S_i = (trivial, c, ~c)."""
    impl, spec = example1_circuits(width=2)
    domain = full_domain(impl)
    impl_z = domain.cast_circuit(impl)
    spec_z = domain.cast_circuit(spec)
    pins = (Pin.gate("q0", 1), Pin.gate("q2", 1))
    c_net = spec_z[spec.gates["c_new"].name]
    not_c = domain.manager.not_(c_net)

    def cand(net, node, trivial=False, from_spec=True):
        return RewireCandidate(net=net, from_spec=from_spec, utility=0.5,
                               z_function=node, trivial=trivial)

    s1 = [cand("s", impl_z["s"], trivial=True, from_spec=False),
          cand("c_new", c_net), cand("not_c", not_c)]
    s2 = [cand("v1", impl_z["v1"], trivial=True, from_spec=False),
          cand("c_new", c_net), cand("not_c", not_c)]
    return impl, spec, domain, pins, (s1, s2), spec_z


class TestExample2:
    def test_xi_selects_c_and_not_c(self):
        impl, spec, domain, pins, cands, spec_z = example2_setup()
        choices = enumerate_rewiring_choices(
            impl, "w_0", domain, pins, cands,
            spec_z[spec.outputs["w_0"]], limit=16)
        assert choices, "expected Xi(c) to admit the paper's rewiring"
        nets = {(c1.net, c2.net) for c1, c2 in choices}
        # the paper's Xi_k = c1^1 | c2^2: first point takes c, or the
        # second point takes ~c (with any consistent partner)
        assert all(c1 == "c_new" or c2 == "not_c" for c1, c2 in nets)
        assert ("c_new", "not_c") in nets

    def test_all_trivial_excluded(self):
        impl, spec, domain, pins, cands, spec_z = example2_setup()
        choices = enumerate_rewiring_choices(
            impl, "w_0", domain, pins, cands,
            spec_z[spec.outputs["w_0"]], limit=32)
        for choice in choices:
            assert not all(c.trivial for c in choice)

    def test_limit_respected(self):
        impl, spec, domain, pins, cands, spec_z = example2_setup()
        choices = enumerate_rewiring_choices(
            impl, "w_0", domain, pins, cands,
            spec_z[spec.outputs["w_0"]], limit=1)
        assert len(choices) == 1

    def test_empty_when_no_candidate_fits(self):
        impl, spec, domain, pins, cands, spec_z = example2_setup()
        # strip the useful candidates; only trivial ones remain
        trimmed = ([cands[0][0]], [cands[1][0]])
        choices = enumerate_rewiring_choices(
            impl, "w_0", domain, pins, trimmed,
            spec_z[spec.outputs["w_0"]], limit=8)
        assert choices == []

    def test_cost_orders_choices(self):
        impl, spec, domain, pins, cands, spec_z = example2_setup()

        def cost(pin, cand):
            return {"s": 0.0, "v1": 0.0, "c_new": 1.0,
                    "not_c": 5.0}[cand.net]

        choices = enumerate_rewiring_choices(
            impl, "w_0", domain, pins, cands,
            spec_z[spec.outputs["w_0"]], limit=8, cost_fn=cost)
        totals = [sum(cost(p, c) for p, c in zip(pins, ch))
                  for ch in choices]
        assert totals == sorted(totals)


class TestCostFunctions:
    def test_default_cost_ordering(self):
        triv = RewireCandidate("x", False, 0.0, 0, trivial=True)
        impl_net = RewireCandidate("y", False, 0.5, 0)
        spec_net = RewireCandidate("z", True, 0.5, 0, level=3)
        p = Pin.gate("g", 0)
        assert default_cost(p, triv) < default_cost(p, impl_net)
        assert default_cost(p, impl_net) < default_cost(p, spec_net)

    def test_clone_aware_cost_charges_new_gates_only(self):
        spec = Circuit("s")
        spec.add_inputs(["a", "b"])
        g1 = spec.and_("a", "b", name="g1")
        g2 = spec.not_(g1, name="g2")
        spec.set_output("o", g2)
        p = Pin.gate("x", 0)
        fresh = make_clone_aware_cost(spec, {})
        cached = make_clone_aware_cost(spec, {"g1": "eco$g1"})
        cand = RewireCandidate("g2", True, 0.5, 0)
        assert fresh(p, cand) > cached(p, cand)

    def test_clone_aware_inputs_free(self):
        spec = Circuit("s")
        spec.add_inputs(["a"])
        spec.set_output("o", "a")
        cost = make_clone_aware_cost(spec, {})
        cand = RewireCandidate("a", True, 0.5, 0)
        assert cost(Pin.gate("x", 0), cand) == pytest.approx(1.2)

    def test_level_term_added(self):
        spec = Circuit("s")
        spec.add_inputs(["a"])
        spec.set_output("o", "a")
        cost = make_clone_aware_cost(spec, {},
                                     level_term=lambda p, c: 10.0)
        cand = RewireCandidate("a", False, 0.5, 0)
        assert cost(Pin.gate("x", 0), cand) == pytest.approx(11.0)
