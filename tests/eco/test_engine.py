"""End-to-end tests of the syseco engine."""

import pytest

from repro.cec.equivalence import check_equivalence
from repro.errors import EcoError
from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco, rectify
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.validate import is_well_formed
from repro.synth import optimize_heavy, optimize_light
from repro.workloads.figures import example1_circuits, figure1_circuits
from repro.workloads.generators import alu_design, control_design
from repro.workloads.revisions import apply_revision


def assert_rectified(result, spec):
    assert is_well_formed(result.patched)
    assert check_equivalence(result.patched, spec).equivalent is True


class TestSmallEcos:
    def test_single_gate_bug(self):
        spec = Circuit("spec")
        spec.add_inputs(["a", "b", "c"])
        g1 = spec.and_("a", "b", name="g1")
        spec.set_output("o", spec.xor(g1, "c"))
        impl = Circuit("impl")
        impl.add_inputs(["a", "b", "c"])
        h1 = impl.or_("a", "b", name="h1")
        impl.set_output("o", impl.xor(h1, "c"))
        result = rectify(impl, spec, EcoConfig(num_samples=4))
        assert_rectified(result, spec)
        assert len(result.patch.ops) >= 1

    def test_already_equivalent_yields_empty_patch(self, tiny_adder):
        result = rectify(tiny_adder, tiny_adder.copy())
        assert_rectified(result, tiny_adder)
        assert len(result.patch.ops) == 0
        assert result.stats().gates == 0

    def test_figure1_scenario(self):
        impl, spec = figure1_circuits(width=3)
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        assert_rectified(result, spec)
        # the protected signal d keeps its original driver
        assert result.patched.outputs["d"] == impl.outputs["d"]

    def test_example1_scenario(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec, EcoConfig(num_samples=8,
                                               max_points=2))
        assert_rectified(result, spec)

    def test_multi_output_revision(self):
        spec = control_design(n_inputs=8, n_outputs=5, n_terms=10, seed=3)
        impl = optimize_heavy(spec, seed=7)
        revised = spec.copy()
        apply_revision(revised, "word-redefine", seed=5, max_bits=3)
        revised = optimize_light(revised)
        result = rectify(impl, revised)
        assert_rectified(result, revised)

    def test_per_output_records(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        assert set(result.per_output)  # every fixed port recorded
        for how in result.per_output.values():
            assert how in ("rewire", "fallback", "fixed-by-earlier")


class TestRevisionKinds:
    @pytest.mark.parametrize("kind", ["gate-type", "wrong-input",
                                      "add-condition", "polarity"])
    def test_each_kind_rectifies(self, kind):
        spec = alu_design(width=3)
        impl = optimize_heavy(spec, seed=11)
        revised = spec.copy()
        apply_revision(revised, kind, seed=9)
        revised = optimize_light(revised)
        result = rectify(impl, revised, EcoConfig(num_samples=8))
        assert_rectified(result, revised)


class TestConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            EcoConfig(num_samples=0)
        with pytest.raises(ValueError):
            EcoConfig(max_points=0)
        with pytest.raises(ValueError):
            EcoConfig(use_impl_nets=False, use_spec_nets=False)
        with pytest.raises(ValueError):
            EcoConfig(error_bias=1.5)

    def test_interface_mismatch_rejected(self, tiny_adder):
        other = Circuit("other")
        other.add_input("zzz")
        other.set_output("different", "zzz")
        with pytest.raises(EcoError):
            SysEco().rectify(tiny_adder, other)

    def test_spec_only_sources(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, use_impl_nets=False))
        assert_rectified(result, spec)

    def test_level_aware_mode_works(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, level_aware=True))
        assert_rectified(result, spec)

    def test_tiny_bdd_limit_falls_back_gracefully(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=4, bdd_node_limit=300))
        assert_rectified(result, spec)


class TestRuntimeBookkeeping:
    def test_runtime_recorded(self, tiny_adder):
        result = rectify(tiny_adder, tiny_adder.copy())
        assert result.runtime_seconds >= 0.0

    def test_original_inputs_untouched(self):
        impl, spec = example1_circuits(width=2)
        impl_gates = {k: g.copy() for k, g in impl.gates.items()}
        rectify(impl, spec, EcoConfig(num_samples=8))
        assert impl.gates == impl_gates

    def test_verified_outputs_complete(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        assert set(result.verified_outputs) == set(spec.outputs)


class TestExactDomain:
    def test_exact_mode_rectifies(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec,
                         EcoConfig(exact_domain_max_inputs=8))
        assert_rectified(result, spec)

    def test_exact_mode_skipped_for_wide_support(self):
        impl, spec = example1_circuits(width=2)
        # support is 7 inputs; limit 2 forces the sampled path
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8,
                                   exact_domain_max_inputs=2))
        assert_rectified(result, spec)

    def test_exhaustive_assignments_helper(self):
        from repro.eco.sampling import exhaustive_assignments
        out = exhaustive_assignments(["a", "b"], fixed={"c": False})
        assert len(out) == 4
        assert all(s["c"] is False for s in out)
        assert len({(s["a"], s["b"]) for s in out}) == 4


class TestCegarRefinement:
    def test_cegar_counter_appears_when_rounds_happen(self):
        # tiny domains produce false positives; CEGAR should be able
        # to run without breaking correctness either way
        impl, spec = figure1_circuits(width=3)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=2, cegar_refinement=True))
        assert_rectified(result, spec)

    def test_cegar_disabled_still_correct(self):
        impl, spec = figure1_circuits(width=3)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=2,
                                   cegar_refinement=False))
        assert_rectified(result, spec)
