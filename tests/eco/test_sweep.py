"""Tests for patch-input refinement sweeping."""

from repro.cec.equivalence import check_equivalence
from repro.eco.sweep import refine_patch_inputs
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.gate import GateType
from repro.netlist.validate import is_well_formed


def circuit_with_redundant_clone():
    """The patch cloned AND(a,b) although g1 already computes it."""
    c = Circuit("c")
    c.add_inputs(["a", "b"])
    c.and_("a", "b", name="g1")
    c.or_("g1", "a", name="g2")
    c.add_gate("eco$h1", GateType.AND, ["a", "b"])   # duplicate of g1
    c.add_gate("eco$h2", GateType.NOT, ["eco$h1"])   # genuinely new
    c.set_output("o", "g2")
    c.set_output("p", "eco$h2")
    return c


class TestRefinePatchInputs:
    def test_duplicate_clone_replaced(self):
        c = circuit_with_redundant_clone()
        reference = c.copy()
        replaced, remaining = refine_patch_inputs(
            c, {"eco$h1", "eco$h2"})
        assert replaced == 1
        assert "eco$h1" not in c.gates
        assert remaining == {"eco$h2"}
        assert c.gates["eco$h2"].fanins == ["g1"]
        assert check_equivalence(reference, c).equivalent
        assert is_well_formed(c)

    def test_no_clones_noop(self, tiny_adder):
        replaced, remaining = refine_patch_inputs(tiny_adder, set())
        assert replaced == 0
        assert remaining == set()

    def test_stale_clone_names_ignored(self, tiny_adder):
        replaced, remaining = refine_patch_inputs(
            tiny_adder, {"never_existed"})
        assert replaced == 0
        assert remaining == set()

    def test_unique_clone_survives(self):
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.add_gate("eco$h", GateType.XOR, ["a", "b"])  # no equivalent
        c.set_output("o", "g1")
        c.set_output("p", "eco$h")
        replaced, remaining = refine_patch_inputs(c, {"eco$h"})
        assert replaced == 0
        assert remaining == {"eco$h"}

    def test_cycle_risk_avoided(self):
        # the only equivalent net sits downstream of the clone; the
        # sweep must refuse to use it
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.add_gate("eco$h", GateType.AND, ["a", "b"])
        c.buf("eco$h", name="g1")  # equivalent but downstream
        c.set_output("o", "g1")
        replaced, remaining = refine_patch_inputs(c, {"eco$h"})
        assert replaced == 0
        assert is_well_formed(c)
