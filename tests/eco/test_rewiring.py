"""Tests for candidate rewiring-net selection (Section 4.3)."""

import itertools

import pytest

from repro.bdd.manager import BddManager
from repro.eco.config import EcoConfig
from repro.eco.rewiring import RewiringContext
from repro.eco.sampling import SamplingDomain
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.traverse import levelize, support_masks


def build_context(impl, spec, port, config=None, samples=None):
    inputs = list(impl.inputs)
    if samples is None:
        samples = [dict(zip(inputs, bits))
                   for bits in itertools.product([False, True],
                                                 repeat=len(inputs))]
    domain = SamplingDomain(BddManager(), samples, inputs)
    impl_z = domain.cast_circuit(impl)
    spec_z = domain.cast_circuit(spec)
    idx = {n: i for i, n in enumerate(inputs)}
    return RewiringContext(
        impl, spec, port, domain, config or EcoConfig(),
        impl_z, spec_z, support_masks(impl, idx),
        support_masks(spec, idx), levelize(impl), levelize(spec))


def simple_pair():
    """impl o = (a|b)&c ; spec o = (a&b)&c."""
    impl = Circuit("impl")
    impl.add_inputs(["a", "b", "c", "d"])
    impl.or_("a", "b", name="g1")
    impl.and_("g1", "c", name="g2")
    impl.set_output("o", "g2")
    impl.set_output("keep", impl.and_("c", "d", name="g3"))
    spec = Circuit("spec")
    spec.add_inputs(["a", "b", "c", "d"])
    spec.and_("a", "b", name="h1")
    spec.and_("h1", "c", name="h2")
    spec.set_output("o", "h2")
    spec.set_output("keep", spec.and_("c", "d", name="h3"))
    return impl, spec


class TestCandidatesForPin:
    def test_trivial_candidate_first(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o")
        cands = ctx.candidates_for_pin(Pin.gate("g2", 0))
        assert cands[0].trivial
        assert cands[0].net == "g1"
        assert cands[0].utility == 0.0

    def test_structural_filter_excludes_foreign_support(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o")
        # 'd' is outside the support of f'_o = (a&b)&c
        nets = {c.net for c in ctx.candidates_for_pin(Pin.gate("g2", 0))}
        assert "d" not in nets
        assert "g3" not in nets

    def test_cycle_creating_nets_excluded(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o")
        nets = {c.net for c in ctx.candidates_for_pin(Pin.gate("g1", 0))
                if not c.from_spec}
        assert "g2" not in nets  # g2 is downstream of g1
        assert "g1" not in nets

    def test_spec_output_guaranteed_for_port_pin(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o")
        cands = ctx.candidates_for_pin(Pin.output("o"))
        assert any(c.from_spec and c.net == "h2" for c in cands)

    def test_utility_values_match_definition(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o")
        # error domain: (a|b)&c != (a&b)&c  <=>  c & (a xor b)
        # at pin g2[0] the driver is g1=a|b; candidate h1=a&b differs
        # from g1 exactly on a xor b, i.e. on ALL error assignments
        cands = ctx.candidates_for_pin(Pin.gate("g2", 0))
        h1 = next(c for c in cands if c.from_spec and c.net == "h1")
        assert h1.utility == pytest.approx(1.0)

    def test_utility_ordering_descending(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o")
        cands = ctx.candidates_for_pin(Pin.gate("g2", 0))
        utilities = [c.utility for c in cands[1:]]  # skip trivial
        assert utilities == sorted(utilities, reverse=True)

    def test_unordered_mode(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o",
                            config=EcoConfig(utility_ordering=False))
        cands = ctx.candidates_for_pin(Pin.gate("g2", 0))
        assert cands[0].trivial  # trivial stays first regardless

    def test_impl_only_source(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o",
                            config=EcoConfig(use_spec_nets=False,
                                             use_impl_nets=True))
        cands = ctx.candidates_for_pin(Pin.gate("g2", 0))
        assert all(not c.from_spec for c in cands)

    def test_spec_only_source(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o",
                            config=EcoConfig(use_spec_nets=True,
                                             use_impl_nets=False))
        cands = ctx.candidates_for_pin(Pin.gate("g2", 0))
        assert all(c.from_spec for c in cands[1:])  # trivial is impl

    def test_max_candidates_respected(self):
        impl, spec = simple_pair()
        cfg = EcoConfig(max_rewire_candidates=2)
        ctx = build_context(impl, spec, "o", config=cfg)
        cands = ctx.candidates_for_pin(Pin.gate("g2", 0))
        assert len(cands) <= 1 + 2 + 1  # trivial + cap + spec-output slot

    def test_forbidden_nets_respected(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o")
        cands = ctx.candidates_for_pin(Pin.gate("g2", 0),
                                       forbidden={"a"})
        assert "a" not in {c.net for c in cands if not c.from_spec}


class TestErrorRegion:
    def test_error_count_matches_truth_table(self):
        impl, spec = simple_pair()
        ctx = build_context(impl, spec, "o")
        # |E| = |c & (a xor b)| over (a,b,c,d) = 2 * 2 = 4
        assert ctx.error_count == 4
