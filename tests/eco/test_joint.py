"""Tests for the joint multi-output rectification extension."""

import itertools
import random

import pytest

from repro.bdd.manager import BddManager
from repro.cec.equivalence import check_equivalence
from repro.eco.choices import enumerate_rewiring_choices_joint
from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco, rectify
from repro.eco.patch import Patch
from repro.eco.points import (
    compute_h_functions,
    feasible_point_sets_joint,
)
from repro.eco.sampling import SamplingDomain
from repro.netlist.circuit import Pin
from repro.workloads.figures import example1_circuits


def full_domain(circuit):
    inputs = list(circuit.inputs)
    samples = [dict(zip(inputs, bits))
               for bits in itertools.product([False, True],
                                             repeat=len(inputs))]
    return SamplingDomain(BddManager(), samples, inputs)


class TestJointPointSets:
    def test_joint_output_ports_always_feasible(self):
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        spec_z = domain.cast_circuit(spec)
        spec_values = {p: spec_z[spec.outputs[p]] for p in ("w_0", "w_1")}
        pins = [Pin.output("w_0"), Pin.output("w_1")]
        sets = feasible_point_sets_joint(impl, spec_values, domain,
                                         pins, num_points=2)
        assert (Pin.output("w_0"), Pin.output("w_1")) in sets

    def test_joint_needs_pins_for_every_output(self):
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        spec_z = domain.cast_circuit(spec)
        spec_values = {p: spec_z[spec.outputs[p]] for p in ("w_0", "w_1")}
        # pins only inside w_0's cone cannot jointly fix w_1
        pins = [Pin.gate("q0", 1), Pin.gate("q2", 1)]
        sets = feasible_point_sets_joint(impl, spec_values, domain,
                                         pins, num_points=2)
        assert sets == []

    def test_joint_shared_select_pins(self):
        """Rewiring the select's own driver pins fixes both outputs."""
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        spec_z = domain.cast_circuit(spec)
        spec_values = {p: spec_z[spec.outputs[p]] for p in ("w_0", "w_1")}
        # the four select sink pins of both outputs plus v1's input:
        # with m=1, rewiring v1's input alone cannot fix both (the
        # positive-select side stays wrong), but the H computation must
        # recognize the infeasibility rather than fail
        pins = [Pin.gate("v1", 0)]
        sets = feasible_point_sets_joint(impl, spec_values, domain,
                                         pins, num_points=1)
        assert sets == []

    def test_compute_h_functions_shares_cone(self):
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        m = domain.manager
        y = [m.add_var()]
        h = compute_h_functions(impl, ["w_0", "w_1"], domain,
                                [Pin.gate("v1", 0)], [m.var(y[0])])
        assert set(h) == {"w_0", "w_1"}
        # both augmented functions depend on the shared free input
        assert y[0] in m.support(h["w_0"])
        assert y[0] in m.support(h["w_1"])


class TestJointChoices:
    def test_joint_choice_fixes_both_outputs(self):
        from repro.eco.rewiring import RewireCandidate
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        impl_z = domain.cast_circuit(impl)
        spec_z = domain.cast_circuit(spec)
        spec_values = {p: spec_z[spec.outputs[p]] for p in ("w_0", "w_1")}
        pins = (Pin.output("w_0"), Pin.output("w_1"))

        def cand(net, node, trivial=False):
            return RewireCandidate(net=net, from_spec=not trivial,
                                   utility=0.0, z_function=node,
                                   trivial=trivial)

        cands = (
            [cand("vout0", impl_z[impl.outputs["w_0"]], trivial=True),
             cand("vout0", spec_z[spec.outputs["w_0"]])],
            [cand("vout1", impl_z[impl.outputs["w_1"]], trivial=True),
             cand("vout1", spec_z[spec.outputs["w_1"]])],
        )
        choices = enumerate_rewiring_choices_joint(
            impl, spec_values, domain, pins, cands, limit=8)
        assert choices
        # the only valid joint choice replaces both outputs
        assert all(not a.trivial and not b.trivial
                   for a, b in choices)


class TestEngineJointMode:
    def test_joint_config_end_to_end(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, joint_outputs=3))
        assert check_equivalence(result.patched, spec).equivalent is True

    def test_joint_grouping(self):
        impl, spec = example1_circuits(width=2)
        engine = SysEco(EcoConfig(joint_outputs=3))
        group = engine._joint_group(impl, ["w_0", "w_1"])
        assert group == ["w_0", "w_1"]  # cones share the select logic

    def test_joint_group_size_capped(self):
        impl, spec = example1_circuits(width=2)
        engine = SysEco(EcoConfig(joint_outputs=1))
        # cap of 1 means no grouping happens in rectify at all; the
        # helper itself respects the cap
        group = engine._joint_group(impl, ["w_0", "w_1"])
        assert group == ["w_0"]

    def test_joint_direct_search_finds_commit(self):
        impl, spec = example1_circuits(width=2)
        engine = SysEco(EcoConfig(num_samples=8, joint_outputs=3))
        engine._counters = {}
        commit = engine._rectify_joint(
            impl.copy(), spec, ["w_0", "w_1"], ["w_0", "w_1"],
            Patch(), random.Random(1))
        # the economy guard may defer to the single-output path; when a
        # commit is returned it must fix the whole group
        if commit is not None:
            assert set(commit.fixed) >= {"w_0", "w_1"}
