"""Degradation-path tests driven by the fault-injection harness.

Every branch of the run-supervision contract is exercised end to end
through the public API (``rectify(impl, spec, injector=...)``) — no
monkeypatching of engine internals:

* deadline expiry mid-run (simulated wall-clock jump);
* injected SAT ``UNKNOWN`` streaks (escalation, then fallback);
* injected aggregate SAT budget exhaustion;
* injected BDD node-limit hits and aggregate BDD node exhaustion;
* strict mode turning each degradation into a raised
  :class:`ResourceBudgetExceeded`.
"""

import pytest

from repro.cec.equivalence import check_equivalence
from repro.errors import (
    DeadlineExceeded,
    ResourceBudgetExceeded,
    SatBudgetExceeded,
)
from repro.netlist.circuit import Circuit
from repro.runtime import (
    FAULT_EXHAUST,
    FAULT_UNKNOWN,
    FaultInjector,
    RunCounters,
    SITE_BDD,
    SITE_CLOCK,
    SITE_SAT,
)
from repro.eco.config import EcoConfig
from repro.eco.engine import SysEco, rectify
from repro.workloads.figures import example1_circuits


def single_bug_circuits():
    """The quickstart instance: OR instead of AND feeding an XOR."""
    spec = Circuit("spec")
    a, b, c = spec.add_inputs(["a", "b", "c"])
    g1 = spec.and_(a, b, name="g1")
    spec.set_output("o", spec.xor(g1, c, name="g2"))
    impl = Circuit("impl")
    a, b, c = impl.add_inputs(["a", "b", "c"])
    h1 = impl.or_(a, b, name="h1")
    impl.set_output("o", impl.xor(h1, c, name="h2"))
    return impl, spec


def assert_verified(result, spec):
    assert check_equivalence(result.patched, spec).equivalent is True


class TestDeadlineDegradation:
    def test_clock_jump_mid_run_degrades_but_verifies(self):
        impl, spec = example1_circuits(width=2)
        injector = FaultInjector().arm(SITE_CLOCK, 10, payload=1e9)
        result = rectify(impl, spec, EcoConfig(num_samples=8,
                                               deadline_s=3600.0),
                         injector=injector)
        assert result.degraded is True
        assert "deadline" in result.degrade_reason
        assert result.counters.degraded_outputs >= 1
        assert any(how == "fallback-degraded"
                   for how in result.per_output.values())
        assert_verified(result, spec)

    def test_strict_mode_raises_deadline(self):
        impl, spec = example1_circuits(width=2)
        injector = FaultInjector().arm(SITE_CLOCK, 10, payload=1e9)
        with pytest.raises(DeadlineExceeded):
            rectify(impl, spec,
                    EcoConfig(num_samples=8, deadline_s=3600.0,
                              degrade_on_budget=False),
                    injector=injector)

    def test_already_expired_deadline_still_yields_valid_patch(self):
        impl, spec = single_bug_circuits()
        result = rectify(impl, spec,
                         EcoConfig(num_samples=4, deadline_s=1e-9))
        assert result.degraded is True
        assert result.per_output == {"o": "fallback-degraded"}
        assert_verified(result, spec)


class TestSatUnknownEscalation:
    def test_unknown_streak_escalates_then_falls_back(self):
        impl, spec = single_bug_circuits()
        injector = FaultInjector().arm(
            SITE_SAT, range(1, 301), payload=FAULT_UNKNOWN)
        result = rectify(impl, spec, EcoConfig(num_samples=4),
                         injector=injector)
        # every supervised validation stayed UNKNOWN: the engine must
        # have escalated, given up on the search, and used the fallback
        assert result.counters.sat_unknowns > 0
        assert result.counters.sat_escalations > 0
        assert result.counters.fallbacks >= 1
        assert result.degraded is False  # UNKNOWN is not exhaustion
        assert result.per_output == {"o": "fallback"}
        assert_verified(result, spec)

    def test_unresolved_calls_deescalate(self):
        impl, spec = single_bug_circuits()
        injector = FaultInjector().arm(
            SITE_SAT, range(1, 301), payload=FAULT_UNKNOWN)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=4, sat_budget_initial=4096,
                                   sat_deescalate_after=1),
                         injector=injector)
        if result.counters.sat_unknowns >= 2:
            assert result.counters.sat_deescalations >= 1
        assert_verified(result, spec)


class TestSatBudgetDegradation:
    def test_injected_exhaustion_degrades_but_verifies(self):
        impl, spec = single_bug_circuits()
        injector = FaultInjector().arm(SITE_SAT, 1, payload=FAULT_EXHAUST)
        result = rectify(impl, spec, EcoConfig(num_samples=4),
                         injector=injector)
        assert result.degraded is True
        assert result.per_output == {"o": "fallback-degraded"}
        assert_verified(result, spec)

    def test_strict_mode_raises_sat_budget(self):
        impl, spec = single_bug_circuits()
        injector = FaultInjector().arm(SITE_SAT, 1, payload=FAULT_EXHAUST)
        with pytest.raises(SatBudgetExceeded):
            rectify(impl, spec,
                    EcoConfig(num_samples=4, degrade_on_budget=False),
                    injector=injector)

    def test_tiny_total_sat_budget_degrades_but_verifies(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, total_sat_budget=1))
        # either the search resolved within one conflict (fine) or the
        # aggregate budget blew and the run degraded; both must verify
        if result.degraded:
            assert result.counters.degraded_outputs >= 1
        assert_verified(result, spec)


class TestBddDegradation:
    def test_injected_node_limit_is_absorbed_by_retry(self):
        # per-session blowups are not run-fatal: the engine shrinks the
        # pin set and retries, ultimately falling back — never degraded
        impl, spec = single_bug_circuits()
        injector = FaultInjector().arm(SITE_BDD, range(1, 11))
        result = rectify(impl, spec, EcoConfig(num_samples=4),
                         injector=injector)
        assert result.degraded is False
        assert result.per_output == {"o": "fallback"}
        assert_verified(result, spec)

    def test_aggregate_node_budget_degrades_but_verifies(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, total_bdd_nodes=1))
        assert result.degraded is True
        assert "BDD node budget" in result.degrade_reason
        assert_verified(result, spec)

    def test_aggregate_node_budget_strict_raises(self):
        impl, spec = example1_circuits(width=2)
        with pytest.raises(ResourceBudgetExceeded):
            rectify(impl, spec,
                    EcoConfig(num_samples=8, total_bdd_nodes=1,
                              degrade_on_budget=False))


class TestRunIsolation:
    def test_counters_are_per_run_not_per_engine(self):
        impl, spec = single_bug_circuits()
        engine = SysEco(EcoConfig(num_samples=4))
        first = engine.rectify(impl, spec)
        second = engine.rectify(impl, spec)
        assert first.counters is not second.counters
        assert isinstance(first.counters, RunCounters)
        assert first.counters.as_dict() == second.counters.as_dict()

    def test_result_counters_record_supervision(self):
        impl, spec = single_bug_circuits()
        result = rectify(impl, spec, EcoConfig(num_samples=4))
        assert result.counters.bdd_sessions >= 1
        assert result.counters.bdd_nodes_spent > 0
        assert result.degraded is False
        assert result.degrade_reason is None


class TestConfigValidation:
    @pytest.mark.parametrize("field", [
        "sat_budget", "bdd_node_limit", "choice_limit",
        "pointset_limit", "sim_rounds", "joint_outputs",
        "max_candidate_pins", "max_rewire_candidates", "prime_limit",
        "max_output_attempts", "sat_escalation_attempts",
        "sat_deescalate_after",
    ])
    def test_positive_int_fields_rejected_at_zero(self, field):
        with pytest.raises(ValueError):
            EcoConfig(**{field: 0})

    @pytest.mark.parametrize("field", [
        "deadline_s", "total_sat_budget", "total_bdd_nodes",
        "sat_budget_initial",
    ])
    def test_optional_budgets_must_be_positive_when_set(self, field):
        with pytest.raises(ValueError):
            EcoConfig(**{field: 0})
        EcoConfig(**{field: 1})  # and fine when positive

    def test_escalation_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            EcoConfig(sat_escalation_factor=1.0)

    def test_defaults_still_valid(self):
        EcoConfig()
