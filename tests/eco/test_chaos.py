"""Chaos harness: kill the engine at injected fault sites, then resume.

These are the end-to-end fault-tolerance tests the checkpoint/resume
and supervised-pool machinery exists for:

* a run killed before or *during* any journal append (``SITE_JOURNAL``
  payloads ``crash`` / ``torn``) resumes to **bit-identical** patch
  outcomes — same per-output resolutions, same patched netlist;
* a worker killed at dispatch (``SITE_WORKER``) is retried with
  backoff (``task.retried``); a partition that keeps killing its
  worker is quarantined and the run degrades but still verifies;
* the telemetry sampler thread never outlives a crashed run.

Everything is driven through the public ``rectify`` API with a real
Table-1 workload plus small synthetic multi-bug circuits.
"""

import json
import threading

import pytest

from repro.cec.equivalence import check_equivalence
from repro.errors import JournalError
from repro.netlist import write_blif
from repro.netlist.circuit import Circuit
from repro.obs.trace import Trace
from repro.runtime import (
    FAULT_CRASH,
    FAULT_KILL,
    FAULT_TORN,
    FaultInjector,
    InjectedCrash,
    SITE_JOURNAL,
    SITE_WORKER,
)
from repro.eco.checkpoint import RunJournal
from repro.eco.config import EcoConfig
from repro.eco.engine import rectify
from repro.workloads.suite import build_case


def multi_bug_circuits(k):
    """``k`` independent single-bug blocks (OR instead of AND each)."""
    spec = Circuit("spec")
    impl = Circuit("impl")
    for i in range(k):
        a, b, c = spec.add_inputs([f"a{i}", f"b{i}", f"c{i}"])
        g1 = spec.and_(a, b, name=f"g1_{i}")
        spec.set_output(f"o{i}", spec.xor(g1, c, name=f"g2_{i}"))
        a, b, c = impl.add_inputs([f"a{i}", f"b{i}", f"c{i}"])
        h1 = impl.or_(a, b, name=f"h1_{i}")
        impl.set_output(f"o{i}", impl.xor(h1, c, name=f"h2_{i}"))
    return impl, spec


def blif_text(circuit, tmp_path, name):
    path = str(tmp_path / name)
    write_blif(circuit, path)
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def assert_identical_outcome(resumed, baseline, spec, tmp_path):
    assert resumed.per_output == baseline.per_output
    assert blif_text(resumed.patched, tmp_path, "resumed.blif") \
        == blif_text(baseline.patched, tmp_path, "baseline.blif")
    assert check_equivalence(resumed.patched, spec).equivalent is True


class TestKillAndResumeSynthetic:
    """Kill/resume identity at every journal append of a 2-commit run.

    Append ordinals for a two-failing-output run: 1 = ``run_started``,
    2 = ``diagnosed``, 3-4 = the two commits, 5 = ``run_finished`` —
    so the sweep covers a kill before any progress, between commits,
    and after all search work is already journaled.
    """

    @pytest.mark.parametrize("fault", [FAULT_CRASH, FAULT_TORN])
    @pytest.mark.parametrize("ordinal", [3, 4, 5])
    def test_bit_identical_resume(self, tmp_path, fault, ordinal):
        store = str(tmp_path / "store")
        config = EcoConfig(num_samples=8)

        impl, spec = multi_bug_circuits(2)
        baseline = rectify(impl, spec, config,
                           journal=RunJournal("base", store_root=store))
        assert len(baseline.per_output) == 2

        impl, spec = multi_bug_circuits(2)
        injector = FaultInjector().arm(SITE_JOURNAL, ordinal,
                                       payload=fault)
        with pytest.raises(InjectedCrash):
            rectify(impl, spec, config, injector=injector,
                    journal=RunJournal("chaos", store_root=store))

        impl, spec = multi_bug_circuits(2)
        journal = RunJournal("chaos", store_root=store, resume=True)
        if fault == FAULT_TORN:
            # the dying append left half a line; salvage dropped it
            assert journal.state.salvaged is not None
        assert journal.state.finished is None
        assert len(journal.commits) == ordinal - 3
        resumed = rectify(impl, spec, config, journal=journal)
        assert resumed.counters.replayed_commits == ordinal - 3
        assert_identical_outcome(resumed, baseline, spec, tmp_path)
        back = RunJournal("chaos", store_root=store, resume=True)
        assert back.state.finished == "ok"

    def test_double_kill_still_resumes(self, tmp_path):
        """Crash the original run *and* the first resumption."""
        store = str(tmp_path / "store")
        config = EcoConfig(num_samples=8)
        impl, spec = multi_bug_circuits(2)
        baseline = rectify(impl, spec, config,
                           journal=RunJournal("base", store_root=store))

        impl, spec = multi_bug_circuits(2)
        injector = FaultInjector().arm(SITE_JOURNAL, 3, payload=FAULT_CRASH)
        with pytest.raises(InjectedCrash):
            rectify(impl, spec, config, injector=injector,
                    journal=RunJournal("chaos", store_root=store))
        # resumption appends commits only (header survives); its first
        # append is the first commit — kill it mid-write
        impl, spec = multi_bug_circuits(2)
        injector = FaultInjector().arm(SITE_JOURNAL, 1, payload=FAULT_TORN)
        with pytest.raises(InjectedCrash):
            rectify(impl, spec, config, injector=injector,
                    journal=RunJournal("chaos", store_root=store,
                                       resume=True))
        impl, spec = multi_bug_circuits(2)
        resumed = rectify(impl, spec, config,
                          journal=RunJournal("chaos", store_root=store,
                                             resume=True))
        assert_identical_outcome(resumed, baseline, spec, tmp_path)

    def test_resume_against_changed_netlist_is_journal_error(
            self, tmp_path):
        """An op that no longer applies reports as a journal mismatch.

        The name / config-digest / failing-set guards can all pass
        while the gate structure underneath changed (e.g. resuming
        against a differently synthesized netlist).  The replay must
        surface that as a ``JournalError``, not a raw netlist error.
        """
        store = str(tmp_path / "store")
        config = EcoConfig(num_samples=8)
        impl, spec = multi_bug_circuits(2)
        injector = FaultInjector().arm(SITE_JOURNAL, 4,
                                       payload=FAULT_CRASH)
        with pytest.raises(InjectedCrash):
            rectify(impl, spec, config, injector=injector,
                    journal=RunJournal("chaos", store_root=store))

        # simulate a changed netlist: point the journaled commit's op
        # at a pin the design does not have
        path = RunJournal("chaos", store_root=store, resume=True).path
        lines = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                rec = json.loads(line)
                if rec.get("type") == "commit":
                    rec["ops"][0]["owner"] = "no_such_gate"
                lines.append(json.dumps(rec))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")

        impl, spec = multi_bug_circuits(2)
        journal = RunJournal("chaos", store_root=store, resume=True)
        with pytest.raises(JournalError,
                           match="no longer applies"):
            rectify(impl, spec, config, journal=journal)


class TestKillAndResumeTable1:
    def test_mid_run_kill_resumes_bit_identical(self, tmp_path):
        store = str(tmp_path / "store")
        config = EcoConfig(num_samples=8)

        case = build_case(1)
        baseline = rectify(case.impl, case.spec, config,
                           journal=RunJournal("base", store_root=store))
        assert len(baseline.per_output) >= 4

        case = build_case(1)
        # append 6 is the 4th commit: the run dies with real progress
        # journaled and real work left
        injector = FaultInjector().arm(SITE_JOURNAL, 6,
                                       payload=FAULT_CRASH)
        with pytest.raises(InjectedCrash):
            rectify(case.impl, case.spec, config, injector=injector,
                    journal=RunJournal("chaos", store_root=store))

        case = build_case(1)
        journal = RunJournal("chaos", store_root=store, resume=True)
        assert len(journal.commits) == 3
        resumed = rectify(case.impl, case.spec, config, journal=journal)
        assert resumed.counters.replayed_commits == 3
        assert_identical_outcome(resumed, baseline, case.spec, tmp_path)


class TestWorkerChaos:
    @pytest.fixture(autouse=True)
    def _inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_ECO_JOBS_INLINE", "1")

    def test_injected_worker_death_is_retried(self):
        impl, spec = multi_bug_circuits(4)
        injector = FaultInjector().arm(SITE_WORKER, 1, payload=FAULT_KILL)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, jobs=2,
                                   retry_backoff_s=0.0),
                         injector=injector)
        assert result.counters.worker_deaths == 1
        assert result.counters.tasks_retried == 1
        assert result.counters.outputs_quarantined == 0
        assert result.degraded is False
        assert set(result.per_output) == {f"o{i}" for i in range(4)}
        assert check_equivalence(result.patched, spec).equivalent is True

    def test_repeat_killer_partition_is_quarantined(self):
        impl, spec = multi_bug_circuits(4)
        # dispatch round observes partitions 1 and 2 (ordinals 1, 2);
        # the retry of partition 1 is ordinal 3 — kill it both times
        injector = FaultInjector().arm(SITE_WORKER, (1, 3),
                                       payload=FAULT_KILL)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, jobs=2,
                                   retry_backoff_s=0.0),
                         injector=injector)
        assert result.counters.worker_deaths == 2
        assert result.counters.outputs_quarantined == 2
        assert result.degraded is True
        assert "quarantined" in result.degrade_reason
        # quarantined outputs still complete, via the degraded fallback
        assert sum(1 for how in result.per_output.values()
                   if how == "fallback-degraded") == 2
        assert check_equivalence(result.patched, spec).equivalent is True

    def test_partial_telemetry_survives_quarantine(self):
        """Live-streamed pre-death telemetry outlives the workers.

        Both kill attempts open their ``eco.worker`` span and publish
        it on the live bus before dying; the aggregator must graft
        those as ``partial=True`` spans — attributed to the worker —
        into the main trace alongside the ``output.quarantined``
        events, and all of it must land in the persisted run record.
        """
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.store import record_from_result

        impl, spec = multi_bug_circuits(4)
        injector = FaultInjector().arm(SITE_WORKER, (1, 3),
                                       payload=FAULT_KILL)
        trace = Trace(name="chaos", metrics=MetricsRegistry())
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, jobs=2,
                                   retry_backoff_s=0.0),
                         injector=injector, trace=trace)
        assert result.counters.outputs_quarantined == 2

        partial = [s for s in trace.spans if s.tags.get("partial")]
        assert len(partial) == 2                 # one per killed worker
        assert all(s.name == "eco.worker" for s in partial)
        workers = {s.tags["worker"] for s in partial}
        assert len(workers) == 2                 # attempt 1 and retry
        assert len([e for e in trace.events
                    if e.name == "worker.partial_telemetry"]) == 2
        assert any(e.name == "output.quarantined" for e in trace.events)

        record = record_from_result(result, trace=trace, name="chaos")
        assert record.events.get("worker.partial_telemetry") == 2
        assert record.events.get("output.quarantined", 0) >= 1
        assert any("eco.worker" in row["phase"] for row in record.phases)
        # surviving workers streamed their span closes into the live
        # latency histograms, which persist too
        assert "repro_sat_call_seconds" in record.histograms

    def test_worker_kill_then_host_kill_then_resume(self, tmp_path):
        """The full gauntlet: a worker dies and is retried, then the
        main process dies mid-journal, then the run resumes clean."""
        store = str(tmp_path / "store")
        config = EcoConfig(num_samples=8, jobs=2, retry_backoff_s=0.0)
        impl, spec = multi_bug_circuits(4)
        baseline = rectify(impl, spec, config,
                           journal=RunJournal("base", store_root=store))

        impl, spec = multi_bug_circuits(4)
        injector = (FaultInjector()
                    .arm(SITE_WORKER, 1, payload=FAULT_KILL)
                    .arm(SITE_JOURNAL, 4, payload=FAULT_CRASH))
        with pytest.raises(InjectedCrash):
            rectify(impl, spec, config, injector=injector,
                    journal=RunJournal("chaos", store_root=store))

        impl, spec = multi_bug_circuits(4)
        resumed = rectify(impl, spec, config,
                          journal=RunJournal("chaos", store_root=store,
                                             resume=True))
        assert resumed.per_output == baseline.per_output
        assert check_equivalence(resumed.patched, spec).equivalent is True


class TestSamplerTeardownUnderChaos:
    def test_no_sampler_thread_survives_an_injected_crash(self, tmp_path):
        impl, spec = multi_bug_circuits(2)
        injector = FaultInjector().arm(SITE_JOURNAL, 3,
                                       payload=FAULT_CRASH)
        journal = RunJournal("leak", store_root=str(tmp_path / "store"))
        with pytest.raises(InjectedCrash):
            rectify(impl, spec,
                    EcoConfig(num_samples=8, sample_interval_s=0.001),
                    injector=injector, trace=Trace(name="chaos"),
                    journal=journal)
        assert not [t for t in threading.enumerate()
                    if t.name == "repro-obs-sampler"]
