"""Tests for the rectification-logic resynthesis post-pass."""

import pytest

from repro.cec.equivalence import check_equivalence
from repro.eco.config import EcoConfig
from repro.eco.engine import rectify
from repro.eco.resynth import resubstitute_patch
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.validate import is_well_formed
from repro.synth import optimize_heavy, optimize_light
from repro.workloads.generators import control_design
from repro.workloads.revisions import apply_revision


def circuit_with_reexpressible_clone():
    """The clone computes ~(a & b); NAND over existing nets suffices."""
    c = Circuit("c")
    c.add_inputs(["a", "b", "u"])
    c.and_("a", "b", name="g1")
    c.or_("g1", "u", name="g2")
    c.set_output("o", "g2")
    # the patch cloned a two-gate cone: NOT(AND(a, b))
    c.add_gate("eco$h1", GateType.AND, ["a", "b"])
    c.add_gate("eco$h2", GateType.NOT, ["eco$h1"])
    c.set_output("p", "eco$h2")
    return c


class TestResubstitute:
    def test_two_gate_clone_becomes_one_gate(self):
        c = circuit_with_reexpressible_clone()
        reference = c.copy()
        resubs, patch_gates = resubstitute_patch(
            c, {"eco$h1", "eco$h2"})
        assert resubs >= 1
        assert is_well_formed(c)
        assert check_equivalence(reference, c).equivalent is True
        # the clone pair is gone; one freshly built gate remains
        assert "eco$h2" not in c.gates
        assert len(patch_gates) < 2
        for g in patch_gates:
            assert g in c.gates

    def test_inverter_resubstitution(self):
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.set_output("o", "g1")
        # clone computing NOR(a,b)... no existing single-net inverse;
        # but a clone equal to ~g1 is one inverter away
        c.add_gate("eco$x", GateType.NAND, ["a", "b"])
        c.set_output("p", "eco$x")
        reference = c.copy()
        resubs, patch_gates = resubstitute_patch(c, {"eco$x"})
        assert resubs == 1
        assert check_equivalence(reference, c).equivalent is True
        # the replacement is a NOT of the existing g1
        p_net = c.outputs["p"]
        assert c.gates[p_net].gtype is GateType.NOT
        assert c.gates[p_net].fanins == ["g1"]

    def test_irreducible_clone_kept(self):
        c = Circuit("c")
        c.add_inputs(["a", "b", "x", "y"])
        c.and_("a", "b", name="g1")
        c.set_output("o", "g1")
        # MUX over nets that exist nowhere as a 2-input combination
        c.add_gate("eco$m", GateType.MUX, ["a", "x", "y"])
        c.set_output("p", "eco$m")
        reference = c.copy()
        resubs, patch_gates = resubstitute_patch(c, {"eco$m"})
        assert resubs == 0
        assert patch_gates == {"eco$m"}
        assert check_equivalence(reference, c).equivalent is True

    def test_no_clones_noop(self, tiny_adder):
        assert resubstitute_patch(tiny_adder, set()) == (0, set())


class TestEngineIntegration:
    def test_resynthesis_config_end_to_end(self):
        spec = control_design(n_inputs=8, n_outputs=5, n_terms=10, seed=21)
        impl = optimize_heavy(spec, seed=33)
        revised = spec.copy()
        apply_revision(revised, "gate-type", seed=5, bias="deep")
        revised = optimize_light(revised)

        plain = rectify(impl, revised, EcoConfig())
        resynth = rectify(impl, revised, EcoConfig(resynthesis=True))
        assert check_equivalence(resynth.patched, revised).equivalent
        assert resynth.stats().gates <= plain.stats().gates
        assert "resubstitutions" in resynth.counters
