"""Tests for rectification point-set enumeration (H(t), Figure 2)."""

import itertools

import pytest

from repro.bdd.manager import FALSE, BddManager
from repro.eco.points import (
    PointSelector,
    compute_h_function,
    evaluate_with_pin_overrides,
    feasible_point_sets,
)
from repro.eco.sampling import SamplingDomain
from repro.netlist.circuit import Circuit, Pin
from repro.workloads.figures import example1_circuits


class TestPointSelector:
    def test_variable_allocation(self):
        m = BddManager()
        sel = PointSelector(m, num_points=3, num_pins=4)
        assert sel.bits == 2
        assert len(sel.all_t_vars()) == 6

    def test_single_pin_uses_one_bit(self):
        m = BddManager()
        sel = PointSelector(m, num_points=1, num_pins=1)
        assert sel.bits == 1

    def test_minterm_is_big_endian(self):
        # Figure 2: t_i^2 == ~t_i0 & t_i1 for a 2-bit word... with big
        # endian bits, code 2 = '10' so t0=1, t1=0
        m = BddManager()
        sel = PointSelector(m, num_points=1, num_pins=4)
        t0, t1 = sel.t_vars[0]
        node = sel.minterm(0, 2)
        assert m.evaluate(node, {t0: True, t1: False})
        assert not m.evaluate(node, {t0: False, t1: True})

    def test_minterms_disjoint_and_cached(self):
        m = BddManager()
        sel = PointSelector(m, num_points=1, num_pins=4)
        assert sel.minterm(0, 1) == sel.minterm(0, 1)
        assert m.and_(sel.minterm(0, 1), sel.minterm(0, 2)) == FALSE

    def test_selection_is_or_of_points(self):
        m = BddManager()
        sel = PointSelector(m, num_points=2, num_pins=2)
        sel_j = sel.selection(0)
        expect = m.or_(sel.minterm(0, 0), sel.minterm(1, 0))
        assert sel_j == expect

    def test_validity_excludes_out_of_range_codes(self):
        m = BddManager()
        sel = PointSelector(m, num_points=1, num_pins=3)  # 2 bits, code 3 bad
        valid = sel.validity()
        t0, t1 = sel.t_vars[0]
        assert not m.evaluate(valid, {t0: True, t1: True})
        assert m.evaluate(valid, {t0: True, t1: False})

    def test_decode_cube_full_code(self):
        m = BddManager()
        sel = PointSelector(m, num_points=1, num_pins=4)
        t0, t1 = sel.t_vars[0]
        assert sel.decode_cube({t0: False, t1: True}, 0) == [1]

    def test_decode_cube_with_dont_cares(self):
        m = BddManager()
        sel = PointSelector(m, num_points=1, num_pins=4)
        t0, t1 = sel.t_vars[0]
        assert sel.decode_cube({t0: True}, 0) == [2, 3]
        assert sel.decode_cube({}, 0) == [0, 1, 2, 3]

    def test_decode_cube_respects_pin_range(self):
        m = BddManager()
        sel = PointSelector(m, num_points=1, num_pins=3)
        t0, t1 = sel.t_vars[0]
        assert sel.decode_cube({t0: True}, 0) == [2]


class TestPinOverrides:
    def test_override_replaces_operand(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.set_output("o", c.and_("a", "b", name="g"))
        m = BddManager(3)
        fns = {"a": m.var(0), "b": m.var(1)}
        y = m.var(2)

        def override(pin, node):
            if pin == Pin.gate("g", 0):
                return y
            return node

        out = evaluate_with_pin_overrides(c, m, fns, "g", override)
        assert out == m.and_(y, m.var(1))

    def test_identity_override(self, tiny_adder):
        m = BddManager(3)
        fns = {n: m.var(i) for i, n in enumerate(tiny_adder.inputs)}
        out = evaluate_with_pin_overrides(
            tiny_adder, m, fns, tiny_adder.outputs["sum"],
            lambda pin, node: node)
        # sum = a ^ b ^ cin
        expect = m.xor(m.xor(m.var(0), m.var(1)), m.var(2))
        assert out == expect


def full_domain(circuit):
    """A sampling domain enumerating the entire input space."""
    inputs = list(circuit.inputs)
    samples = [dict(zip(inputs, bits))
               for bits in itertools.product([False, True],
                                             repeat=len(inputs))]
    return SamplingDomain(BddManager(), samples, inputs)


class TestExample1:
    """Example 1 of the paper: H_k = t1^k t2^{n+k} | t1^{n+k} t2^k."""

    def test_h_closed_form(self):
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        m = domain.manager
        spec_values = domain.cast_circuit(spec)
        k, n = 0, 2
        # candidate pins: the select inputs of gates q0..q3 (pin 1 each)
        pins = [Pin.gate(f"q{j}", 1) for j in range(2 * n)]
        y_vars = [m.add_var() for _ in range(2)]
        y_nodes = [m.var(v) for v in y_vars]
        from repro.eco.points import PointSelector
        selector = PointSelector(m, 2, len(pins))
        h = compute_h_function(impl, f"w_{k}", domain, pins, y_nodes,
                               selector=selector)
        eq = m.xnor(h, spec_values[spec.outputs[f"w_{k}"]])
        h_t = m.and_(m.forall(m.exists(eq, y_vars), domain.z_vars),
                     selector.validity())
        expect = m.or_(
            m.and_(selector.minterm(0, k), selector.minterm(1, n + k)),
            m.and_(selector.minterm(0, n + k), selector.minterm(1, k)),
        )
        assert h_t == expect

    def test_feasible_point_sets_recover_pair(self):
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        spec_values = domain.cast_circuit(spec)
        n = 2
        pins = [Pin.gate(f"q{j}", 1) for j in range(2 * n)]
        sets = feasible_point_sets(
            impl, "w_0", domain, pins,
            spec_values[spec.outputs["w_0"]], num_points=2)
        assert sets == [(Pin.gate("q0", 1), Pin.gate("q2", 1))]

    def test_no_point_set_when_insufficient(self):
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        spec_values = domain.cast_circuit(spec)
        # only one selectable pin cannot fix w_0 (needs both selects)
        pins = [Pin.gate("q0", 1)]
        sets = feasible_point_sets(
            impl, "w_0", domain, pins,
            spec_values[spec.outputs["w_0"]], num_points=1)
        assert sets == []

    def test_output_port_pin_always_feasible(self):
        impl, spec = example1_circuits(width=2)
        domain = full_domain(impl)
        spec_values = domain.cast_circuit(spec)
        pins = [Pin.output("w_0")]
        sets = feasible_point_sets(
            impl, "w_0", domain, pins,
            spec_values[spec.outputs["w_0"]], num_points=1)
        assert sets == [(Pin.output("w_0"),)]
