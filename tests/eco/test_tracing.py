"""End-to-end tracing tests through the public rectify API.

Observability must *witness* the supervision machinery: fault-injected
SAT ``UNKNOWN`` streaks, BDD node-limit hits and run degradation all
have to show up as tagged spans/events in the trace.  And the no-op
path must stay a no-op: rectifying without a trace records nothing and
produces the identical patch.
"""

from repro.cec.equivalence import check_equivalence
from repro.eco.config import EcoConfig
from repro.eco.engine import rectify
from repro.obs import NULL_TRACE, Trace, summarize
from repro.runtime import (
    FAULT_UNKNOWN,
    FaultInjector,
    SITE_BDD,
    SITE_CLOCK,
    SITE_SAT,
)
from repro.workloads.figures import example1_circuits


def traced_rectify(config=None, injector=None, width=2):
    impl, spec = example1_circuits(width=width)
    trace = Trace(name=impl.name)
    result = rectify(impl, spec, config or EcoConfig(num_samples=8),
                     injector=injector, trace=trace)
    return impl, spec, trace, result


def spans_named(trace, name):
    return [s for s in trace.spans if s.name == name]


def events_named(trace, name):
    return [e for e in trace.events if e.name == name]


class TestHappyPathTrace:
    def test_full_phase_tree_present(self):
        impl, spec, trace, result = traced_rectify()
        names = {s.name for s in trace.spans}
        assert {"eco.rectify", "eco.diagnose", "eco.output",
                "eco.samples", "eco.search", "bdd.session",
                "eco.rank_pins", "rewiring.candidates",
                "points.enumerate", "choices.enumerate", "sim.screen",
                "eco.validate", "sat.validate",
                "cec.verify_final"} <= names
        assert result.trace is trace
        # every span closed, root covers the run
        assert all(s.t_end is not None for s in trace.spans)
        (root,) = spans_named(trace, "eco.rectify")
        assert root.parent_id is None

    def test_output_spans_tagged_and_counted(self):
        impl, spec, trace, result = traced_rectify()
        outputs = spans_named(trace, "eco.output")
        assert {s.tags["output"] for s in outputs} == set(
            result.per_output)
        for s in outputs:
            assert s.tags["how"] == result.per_output[s.tags["output"]]
        total_conflicts = sum(
            s.counters.get("sat_conflicts_spent", 0) for s in outputs)
        assert total_conflicts == result.counters.sat_conflicts_spent

    def test_sat_validate_spans_tag_verdicts(self):
        impl, spec, trace, result = traced_rectify()
        # one eco.validate span per counted validation; the SAT query
        # spans are a subset (some candidates reject before solving)
        assert len(spans_named(trace, "eco.validate")) == \
            result.counters.sat_validations
        validations = spans_named(trace, "sat.validate")
        assert 0 < len(validations) <= result.counters.sat_validations
        assert {s.tags["result"] for s in validations} <= {
            "equivalent", "counterexample", "unknown"}
        assert all(s.tags["attempts"] >= 1 for s in validations)

    def test_bdd_sessions_record_node_stats(self):
        impl, spec, trace, result = traced_rectify()
        sessions = spans_named(trace, "bdd.session")
        assert len(sessions) == result.counters.bdd_sessions
        assert all(s.tags.get("nodes", 0) > 0 for s in sessions)

    def test_summary_attributes_runtime(self):
        impl, spec, trace, result = traced_rectify()
        summary = result.trace_summary()
        assert summary.roots[0].name == "eco.rectify"
        assert summary.coverage > 0.5
        assert {h.output for h in summary.hot_outputs} == set(
            result.per_output)


class TestFaultVisibility:
    def test_sat_unknown_streak_appears_as_events_and_tags(self):
        injector = FaultInjector().arm(SITE_SAT, range(1, 4),
                                       payload=FAULT_UNKNOWN)
        impl, spec, trace, result = traced_rectify(injector=injector)
        unknowns = events_named(trace, "sat.unknown")
        assert unknowns, "UNKNOWN attempts must be visible as events"
        assert all(e.tags["budget"] > 0 for e in unknowns)
        # escalation retries: the faulted validation ran several attempts
        validations = spans_named(trace, "sat.validate")
        assert max(s.tags["attempts"] for s in validations) > 1
        # attempt ordinals climb within one validation span
        by_span = {}
        for e in unknowns:
            by_span.setdefault(e.span_id, []).append(e.tags["attempt"])
        assert any(a == sorted(a) and len(a) > 1
                   for a in by_span.values()) or unknowns

    def test_bdd_node_limit_appears_as_error_span_and_event(self):
        injector = FaultInjector().arm(SITE_BDD, 1)
        impl, spec, trace, result = traced_rectify(injector=injector)
        hits = events_named(trace, "bdd.node_limit")
        assert hits and hits[0].tags["max_pins"] > 0
        errored = [s for s in spans_named(trace, "eco.search")
                   if s.tags.get("error") == "BddNodeLimitError"]
        assert errored, "the aborted search span must carry the error tag"
        assert check_equivalence(result.patched, spec).equivalent is True

    def test_degradation_event_recorded(self):
        injector = FaultInjector().arm(SITE_CLOCK, 10, payload=1e9)
        impl, spec, trace, result = traced_rectify(
            EcoConfig(num_samples=8, deadline_s=3600.0),
            injector=injector)
        assert result.degraded is True
        (degr,) = events_named(trace, "run.degraded")
        assert "deadline" in degr.tags["reason"]
        assert trace.meta["degraded"] is True
        fallbacks = spans_named(trace, "eco.fallback")
        assert any(s.tags["degraded"] for s in fallbacks)
        assert result.trace_summary().degraded is True


class TestNoopPath:
    def test_untraced_run_records_nothing_and_matches(self):
        impl, spec = example1_circuits(width=2)
        config = EcoConfig(num_samples=8)
        plain = rectify(impl, spec, config)
        assert plain.trace is None
        assert plain.trace_summary() is None
        assert NULL_TRACE.spans == [] and NULL_TRACE.events == []

        impl2, spec2 = example1_circuits(width=2)
        traced = Trace(name=impl2.name)
        shadowed = rectify(impl2, spec2, config, trace=traced)
        # identical rectification either way
        assert [op.describe() for op in plain.patch.ops] == \
            [op.describe() for op in shadowed.patch.ops]
        assert plain.per_output == shadowed.per_output
        assert plain.counters.as_dict() == shadowed.counters.as_dict()

    def test_report_omits_phase_breakdown_when_untraced(self):
        from repro.eco.report import format_patch_report
        impl, spec = example1_circuits(width=2)
        plain = rectify(impl, spec, EcoConfig(num_samples=8))
        assert "phase breakdown" not in format_patch_report(plain)

        impl2, spec2 = example1_circuits(width=2)
        _, _, trace, traced = traced_rectify()
        assert "phase breakdown" in format_patch_report(traced)


class TestTelemetrySampling:
    def test_traced_run_emits_sample_timeline(self):
        impl, spec, trace, result = traced_rectify()
        samples = events_named(trace, "obs.sample")
        assert len(samples) >= 2  # at least the start/stop snapshots
        seqs = [e.tags["seq"] for e in samples]
        assert seqs == sorted(seqs)
        series = [e.tags.get("bdd_nodes", 0) for e in samples]
        assert series == sorted(series), \
            "sampled BDD node counts must be non-decreasing"
        assert series[-1] == result.counters.bdd_nodes_spent
        final = samples[-1].tags
        assert final.get("sat_conflicts_spent", 0) == \
            result.counters.sat_conflicts_spent

    def test_supervised_elapsed_recorded_in_meta(self):
        impl, spec, trace, result = traced_rectify()
        assert "supervised_elapsed_s" in trace.meta
        assert trace.meta["supervised_elapsed_s"] >= 0.0

    def test_injected_clock_jump_visible_in_meta(self):
        injector = FaultInjector().arm(SITE_CLOCK, 2, payload=25.0)
        impl, spec, trace, result = traced_rectify(injector=injector)
        assert trace.meta["supervised_elapsed_s"] > 24.0
        # the real runtime stays honest
        assert result.runtime_seconds < 24.0

    def test_untraced_run_starts_no_sampler_thread(self):
        import threading
        impl, spec = example1_circuits(width=2)
        before = {t.name for t in threading.enumerate()}
        rectify(impl, spec, EcoConfig(num_samples=8))
        after = {t.name for t in threading.enumerate()}
        assert "repro-obs-sampler" not in (after - before)
        assert after <= before | set()

    def test_sample_interval_zero_keeps_snapshots(self):
        impl, spec = example1_circuits(width=2)
        trace = Trace(name=impl.name)
        rectify(impl, spec,
                EcoConfig(num_samples=8, sample_interval_s=0),
                trace=trace)
        samples = events_named(trace, "obs.sample")
        assert len(samples) == 2
