"""Tests for the patch data model and Table-2 statistics."""

import pytest

from repro.eco.patch import Patch, PatchStats, RewireOp
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.gate import GateType


class TestRewireOp:
    def test_describe_gate_pin(self):
        op = RewireOp(Pin.gate("g", 1), "s", from_spec=True)
        text = op.describe()
        assert "g[1]" in text and "C'" in text

    def test_describe_output_pin(self):
        op = RewireOp(Pin.output("o"), "s")
        text = op.describe()
        assert "output o" in text and "(C)" in text

    def test_frozen(self):
        op = RewireOp(Pin.output("o"), "s")
        with pytest.raises(Exception):
            op.source_net = "t"


class TestPatchStats:
    def test_pure_rewire_stats(self):
        """Rewiring to an existing net: 0 gates, 1 net, 1 input."""
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.or_("a", "b", name="g2")
        c.set_output("o", "g2")
        patch = Patch()
        op = RewireOp(Pin.output("o"), "g1")
        c.rewire_pin(Pin.output("o"), "g1")
        patch.record([op], {}, set())
        stats = patch.stats(c)
        assert stats == PatchStats(inputs=1, outputs=1, gates=0, nets=1)

    def test_rewire_to_constant_has_zero_inputs(self):
        """The paper's case-5 shape: 0 inputs, 0 gates, 1 net."""
        c = Circuit("c")
        c.add_inputs(["a"])
        c.not_("a", name="g1")
        c.const0(name="k")
        c.set_output("o", "g1")
        patch = Patch()
        c.rewire_pin(Pin.output("o"), "k")
        patch.record([RewireOp(Pin.output("o"), "k")], {}, set())
        stats = patch.stats(c)
        assert stats == PatchStats(inputs=0, outputs=1, gates=0, nets=1)

    def test_cloned_logic_counted(self):
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.not_("a", name="g1")
        c.add_gate("eco$h1", GateType.AND, ["a", "b"])
        c.add_gate("eco$h2", GateType.NOT, ["eco$h1"])
        c.set_output("o", "eco$h2")
        patch = Patch()
        patch.record([RewireOp(Pin.output("o"), "h2", from_spec=True)],
                     {"h1": "eco$h1", "h2": "eco$h2"},
                     {"eco$h1", "eco$h2"})
        stats = patch.stats(c)
        assert stats.gates == 2
        assert stats.outputs == 1
        assert stats.inputs == 2        # a and b feed the clones
        assert stats.nets == 4          # 2 clones + boundary a, b

    def test_swept_clones_not_counted(self):
        """Gates removed after sweeping do not appear in stats."""
        c = Circuit("c")
        c.add_inputs(["a"])
        c.not_("a", name="g1")
        c.set_output("o", "g1")
        patch = Patch()
        # records a clone that no longer exists in the circuit
        patch.record([RewireOp(Pin.output("o"), "h", from_spec=True)],
                     {"h": "eco$gone"}, {"eco$gone"})
        stats = patch.stats(c)
        assert stats.gates == 0

    def test_duplicate_pins_counted_once(self):
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.set_output("o", "g1")
        patch = Patch()
        op = RewireOp(Pin.gate("g1", 0), "b")
        patch.record([op, op], {}, set())
        assert patch.stats(c).outputs == 1

    def test_len_and_describe(self):
        patch = Patch()
        patch.record([RewireOp(Pin.output("o"), "x")], {}, set())
        assert len(patch) == 1
        assert "output o" in patch.describe()


class TestRecord:
    def test_record_accumulates(self):
        patch = Patch()
        patch.record([RewireOp(Pin.output("o1"), "x")], {"a": "c1"},
                     {"c1"})
        patch.record([RewireOp(Pin.output("o2"), "y")], {"b": "c2"},
                     {"c2"})
        assert len(patch.ops) == 2
        assert patch.clone_map == {"a": "c1", "b": "c2"}
        assert patch.cloned_gates == {"c1", "c2"}


class TestExtractCircuit:
    def _rectified(self):
        from repro.eco.config import EcoConfig
        from repro.eco.engine import rectify
        from repro.workloads.figures import example1_circuits
        impl, spec = example1_circuits(width=2)
        return impl, spec, rectify(impl, spec, EcoConfig(num_samples=8))

    def test_patch_netlist_is_well_formed(self):
        from repro.netlist.validate import is_well_formed
        impl, spec, result = self._rectified()
        patch_circuit, port_map = result.patch.extract_circuit(
            result.patched)
        assert is_well_formed(patch_circuit)
        assert len(port_map) == len(set(result.patch.rewired_pins))

    def test_ports_drive_the_recorded_pins(self):
        impl, spec, result = self._rectified()
        patch_circuit, port_map = result.patch.extract_circuit(
            result.patched)
        for port, pin in port_map.items():
            # the port's net drives exactly that pin in the patched impl
            driven = result.patched.pin_driver(pin)
            assert patch_circuit.outputs[port] == driven or \
                driven in patch_circuit.inputs

    def test_patch_functions_match_patched_implementation(self):
        """Simulating the patch over implementation values reproduces
        the nets feeding the rewired pins."""
        import random
        from repro.netlist.simulate import simulate_words, random_patterns
        impl, spec, result = self._rectified()
        patched = result.patched
        patch_circuit, port_map = result.patch.extract_circuit(patched)
        rng = random.Random(9)
        words = random_patterns(patched.inputs, rng)
        impl_values = simulate_words(patched, words)
        patch_values = simulate_words(
            patch_circuit,
            {n: impl_values[n] for n in patch_circuit.inputs})
        for port, pin in port_map.items():
            driver = patched.pin_driver(pin)
            assert patch_values[patch_circuit.outputs[port]] == \
                impl_values[driver], port

    def test_empty_patch_extracts_empty_circuit(self, tiny_adder):
        from repro.eco.engine import rectify
        result = rectify(tiny_adder, tiny_adder.copy())
        patch_circuit, port_map = result.patch.extract_circuit(
            result.patched)
        assert patch_circuit.num_gates == 0
        assert port_map == {}
