"""Checkpoint-journal unit tests: WAL round trips, resume guards."""

import json
import random

import pytest

from repro.errors import JournalError
from repro.netlist.circuit import Pin
from repro.eco.checkpoint import (
    RunJournal,
    config_digest,
    decode_rng_state,
    deserialize_ops,
    encode_rng_state,
    journal_path,
    list_resumable,
    serialize_ops,
)
from repro.eco.config import EcoConfig
from repro.eco.patch import RewireOp


def sample_ops():
    return [
        RewireOp(Pin.gate("g7", 1), "n42", from_spec=False),
        RewireOp(Pin.output("o3"), "t_new", from_spec=True),
    ]


class TestSerialization:
    def test_ops_round_trip(self):
        ops = sample_ops()
        back = deserialize_ops(serialize_ops(ops))
        assert back == ops

    def test_ops_survive_json(self):
        payload = json.loads(json.dumps(serialize_ops(sample_ops())))
        assert deserialize_ops(payload) == sample_ops()

    def test_rng_state_round_trip_restores_the_stream(self):
        rng = random.Random(17)
        rng.random()
        encoded = json.loads(json.dumps(encode_rng_state(rng.getstate())))
        expected = [rng.random() for _ in range(5)]
        fresh = random.Random()
        fresh.setstate(decode_rng_state(encoded))
        assert [fresh.random() for _ in range(5)] == expected


class TestConfigDigest:
    def test_resume_wiring_is_excluded(self):
        plain = EcoConfig(num_samples=8)
        resumed = EcoConfig(num_samples=8, resume_from="2026-abc")
        assert config_digest(plain) == config_digest(resumed)

    def test_search_parameters_are_included(self):
        assert config_digest(EcoConfig(num_samples=8)) \
            != config_digest(EcoConfig(num_samples=16))


class TestRunJournal:
    def test_wal_round_trip(self, tmp_path):
        store = str(tmp_path)
        config = EcoConfig(num_samples=8)
        journal = RunJournal("r1", store_root=store)
        assert journal.resuming is False
        journal.start("adder", config, ["o1", "o2"])
        journal.record_commit("o1", "rewire", sample_ops(), ["o1"],
                              rng_state=random.Random(3).getstate(),
                              sat_spent=40, bdd_spent=900)
        journal.finish("ok")

        back = RunJournal("r1", store_root=store, resume=True)
        assert back.resuming is True
        assert back.state.header["impl"] == "adder"
        assert back.state.header["config_digest"] == config_digest(config)
        assert back.state.failing == ["o1", "o2"]
        assert back.state.finished == "ok"
        (commit,) = back.commits
        assert commit.seq == 1
        assert commit.port == "o1"
        assert commit.how == "rewire"
        assert commit.ops == sample_ops()
        assert commit.fixed == ["o1"]
        assert commit.sat_spent == 40
        assert commit.bdd_spent == 900
        assert decode_rng_state(commit.rng_state) \
            == random.Random(3).getstate()

    def test_fresh_journal_refuses_existing_file(self, tmp_path):
        store = str(tmp_path)
        RunJournal("r1", store_root=store).start(
            "adder", EcoConfig(), ["o"])
        with pytest.raises(JournalError, match="already exists"):
            RunJournal("r1", store_root=store)

    def test_commit_seq_continues_after_resume(self, tmp_path):
        store = str(tmp_path)
        journal = RunJournal("r1", store_root=store)
        journal.start("adder", EcoConfig(), ["o1", "o2"])
        journal.record_commit("o1", "rewire", [], ["o1"])
        resumed = RunJournal("r1", store_root=store, resume=True)
        resumed.record_commit("o2", "fallback", [], ["o2"])
        back = RunJournal("r1", store_root=store, resume=True)
        assert [c.seq for c in back.commits] == [1, 2]

    def test_torn_tail_salvaged_on_resume(self, tmp_path):
        store = str(tmp_path)
        journal = RunJournal("r1", store_root=store)
        journal.start("adder", EcoConfig(), ["o1"])
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "commit", "seq": 1, "po')  # torn append
        back = RunJournal("r1", store_root=store, resume=True)
        assert back.state.salvaged is not None
        assert back.resuming is True
        assert back.commits == []
        # the salvage rewrote the file: the next open is clean
        again = RunJournal("r1", store_root=store, resume=True)
        assert again.state.salvaged is None

    def test_store_root_resolves_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_STORE", str(tmp_path / "env"))
        journal = RunJournal("r1")
        assert journal.path == journal_path(str(tmp_path / "env"), "r1")


class TestResumeGuards:
    def start_journal(self, tmp_path, config=None, failing=("o1",)):
        journal = RunJournal("r1", store_root=str(tmp_path))
        journal.start("adder", config or EcoConfig(), list(failing))
        return RunJournal("r1", store_root=str(tmp_path), resume=True)

    def test_matching_run_is_resumable(self, tmp_path):
        back = self.start_journal(tmp_path)
        back.check_resumable("adder", EcoConfig(), ["o1"])

    def test_design_mismatch_refused(self, tmp_path):
        back = self.start_journal(tmp_path)
        with pytest.raises(JournalError, match="design"):
            back.check_resumable("mult", EcoConfig(), ["o1"])

    def test_config_mismatch_refused(self, tmp_path):
        back = self.start_journal(tmp_path, config=EcoConfig(num_samples=8))
        with pytest.raises(JournalError, match="configuration"):
            back.check_resumable("adder", EcoConfig(num_samples=32), ["o1"])

    def test_failing_set_mismatch_refused(self, tmp_path):
        back = self.start_journal(tmp_path)
        with pytest.raises(JournalError, match="netlists changed"):
            back.check_resumable("adder", EcoConfig(), ["o1", "o9"])

    def test_finished_run_refused(self, tmp_path):
        back = self.start_journal(tmp_path)
        back.finish("ok")
        back = RunJournal("r1", store_root=str(tmp_path), resume=True)
        with pytest.raises(JournalError, match="already finished"):
            back.check_resumable("adder", EcoConfig(), ["o1"])


class TestListResumable:
    def test_lists_unfinished_runs_only(self, tmp_path):
        store = str(tmp_path)
        done = RunJournal("r-done", store_root=store)
        done.start("adder", EcoConfig(), ["o1"])
        done.finish("ok")
        live = RunJournal("r-live", store_root=store)
        live.start("mult", EcoConfig(), ["o1", "o2"])
        live.record_commit("o1", "rewire", [], ["o1"])

        entries = list_resumable(store)
        assert [e["run_id"] for e in entries] == ["r-live"]
        (entry,) = entries
        assert entry["impl"] == "mult"
        assert entry["commits"] == 1
        assert entry["salvaged"] is False
        assert entry["path"] == journal_path(store, "r-live")

    def test_empty_store_lists_nothing(self, tmp_path):
        assert list_resumable(str(tmp_path)) == []
