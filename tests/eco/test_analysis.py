"""Tests for the pre-rectification diagnostics."""

import pytest

from repro.eco.analysis import (
    diagnose,
    error_rate,
    format_diagnosis,
    structural_similarity,
)
from repro.netlist.circuit import Circuit
from repro.synth import optimize_heavy
from repro.workloads.figures import example1_circuits
from repro.workloads.generators import control_design


def xor_vs_or():
    impl = Circuit("i")
    impl.add_inputs(["a", "b"])
    impl.set_output("o", impl.xor("a", "b"))
    spec = Circuit("s")
    spec.add_inputs(["a", "b"])
    spec.set_output("o", spec.or_("a", "b"))
    return impl, spec


class TestErrorRate:
    def test_quarter_rate(self):
        impl, spec = xor_vs_or()
        # xor vs or differ exactly on a=b=1: rate 1/4
        rate = error_rate(impl, spec, "o", rounds=32)
        assert rate == pytest.approx(0.25, abs=0.03)

    def test_zero_rate_for_equal(self):
        impl, _ = xor_vs_or()
        assert error_rate(impl, impl.copy(), "o") == 0.0


class TestStructuralSimilarity:
    def test_identical_circuits(self):
        impl, _ = xor_vs_or()
        assert structural_similarity(impl, impl.copy()) == 1.0

    def test_heavy_restructuring_lowers_similarity(self):
        spec = control_design(10, 6, 14, seed=3)
        close = spec.copy()
        remote = optimize_heavy(spec, seed=5)
        assert structural_similarity(remote, spec) < \
            structural_similarity(close, spec)

    def test_empty_spec_gates(self):
        impl, _ = xor_vs_or()
        trivial = Circuit("t")
        trivial.add_input("a")
        trivial.set_output("o", "a")
        assert structural_similarity(impl, trivial) == 1.0


class TestDiagnose:
    def test_full_diagnosis(self):
        impl, spec = example1_circuits(width=2)
        diagnosis = diagnose(impl, spec)
        assert set(diagnosis.failing_outputs) == {"w_0", "w_1"}
        assert diagnosis.total_outputs == 2
        assert diagnosis.failing_fraction == 1.0
        for d in diagnosis.per_output.values():
            assert d.error_rate > 0
            assert d.cone_gates > 0
            assert d.impl_support >= 2

    def test_suggest_config_exact_for_small_support(self):
        impl, spec = xor_vs_or()
        config = diagnose(impl, spec).suggest_config()
        assert config.exact_domain_max_inputs == 8

    def test_suggest_config_samples_for_rare_errors(self):
        impl = Circuit("i")
        impl.add_inputs([f"x{i}" for i in range(10)])
        impl.set_output("o", impl.const0())
        spec = Circuit("s")
        spec.add_inputs([f"x{i}" for i in range(10)])
        spec.set_output("o", spec.and_(*[f"x{i}" for i in range(10)]))
        config = diagnose(impl, spec).suggest_config()
        assert config.num_samples == 32

    def test_format_contains_key_lines(self):
        impl, spec = example1_circuits(width=2)
        text = format_diagnosis(diagnose(impl, spec))
        assert "failing outputs" in text
        assert "structural similarity" in text
        assert "w_0" in text
