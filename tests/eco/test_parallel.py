"""Parallel per-output search: partitioning, merge, telemetry absorb.

The multi-worker tests run with ``REPRO_ECO_JOBS_INLINE=1`` so the
worker loop executes in-process (same code path minus the pool), which
keeps partitioning, budget shares, counter merges and trace grafting
deterministic.  One test exercises the real :mod:`concurrent.futures`
pool end to end.
"""

import pytest

from repro.cec.equivalence import check_equivalence
from repro.errors import ResourceBudgetExceeded
from repro.netlist.circuit import Circuit
from repro.obs.trace import Trace
from repro.runtime.supervisor import RunSupervisor
from repro.eco.config import EcoConfig
from repro.eco.engine import rectify
from repro.eco.parallel import parallel_verify, partition_targets


def multi_bug_circuits(k=4):
    """``k`` independent single-bug blocks (OR instead of AND each)."""
    spec = Circuit("spec")
    impl = Circuit("impl")
    for i in range(k):
        a, b, c = spec.add_inputs([f"a{i}", f"b{i}", f"c{i}"])
        g1 = spec.and_(a, b, name=f"g1_{i}")
        spec.set_output(f"o{i}", spec.xor(g1, c, name=f"g2_{i}"))
        a, b, c = impl.add_inputs([f"a{i}", f"b{i}", f"c{i}"])
        h1 = impl.or_(a, b, name=f"h1_{i}")
        impl.set_output(f"o{i}", impl.xor(h1, c, name=f"h2_{i}"))
    return impl, spec


class TestPartitioning:
    def test_round_robin_deal(self):
        groups = partition_targets(["a", "b", "c", "d", "e"], 2)
        assert groups == [["a", "c", "e"], ["b", "d"]]

    def test_more_jobs_than_outputs_drops_empty_groups(self):
        groups = partition_targets(["a", "b"], 4)
        assert groups == [["a"], ["b"]]

    def test_budget_shares_reserve_one_for_main(self):
        run = RunSupervisor.from_config(
            EcoConfig(total_sat_budget=100, total_bdd_nodes=50))
        share = run.partition_budget(3)
        assert share["total_sat_budget"] == 100 // 4
        assert share["total_bdd_nodes"] == 50 // 4
        assert share["deadline_s"] is None

    def test_unlimited_budgets_stay_unlimited(self):
        run = RunSupervisor.from_config(EcoConfig())
        share = run.partition_budget(2)
        assert share["total_sat_budget"] is None
        assert share["total_bdd_nodes"] is None

    @pytest.mark.parametrize("total,jobs", [
        (100, 3), (100, 4), (7, 3), (101, 2), (997, 16),
    ])
    def test_partition_shares_sum_exactly(self, total, jobs):
        run = RunSupervisor.from_config(
            EcoConfig(total_sat_budget=total, total_bdd_nodes=total))
        shares, reserve = run.partition_shares(jobs)
        assert len(shares) == jobs
        for key in ("total_sat_budget", "total_bdd_nodes"):
            # the division remainder lands in the reserve: no conflict
            # of the parent budget is lost or double-granted
            assert sum(s[key] for s in shares) + reserve[key] == total
            assert all(s[key] >= 1 for s in shares)
            assert reserve[key] >= min(s[key] for s in shares)

    def test_partition_shares_tiny_budget_floors_at_one(self):
        # budgets below jobs+1 cannot split exactly (configs reject
        # zero): each worker gets the floor of 1, the reserve clamps
        run = RunSupervisor.from_config(EcoConfig(total_sat_budget=2))
        shares, reserve = run.partition_shares(3)
        assert [s["total_sat_budget"] for s in shares] == [1, 1, 1]
        assert reserve["total_sat_budget"] == 0

    def test_partition_shares_track_spent_budget(self):
        run = RunSupervisor.from_config(EcoConfig(total_sat_budget=100))
        run.budget.charge_sat(40)
        shares, reserve = run.partition_shares(2)
        assert sum(s["total_sat_budget"] for s in shares) \
            + reserve["total_sat_budget"] == 60

    def test_partition_shares_unlimited_stay_unlimited(self):
        run = RunSupervisor.from_config(EcoConfig())
        shares, reserve = run.partition_shares(2)
        assert all(s["total_sat_budget"] is None for s in shares)
        assert reserve["total_bdd_nodes"] is None
        assert reserve["deadline_s"] is None


class TestTelemetryMerge:
    def test_absorb_worker_adds_counters_and_charges_budget(self):
        run = RunSupervisor.from_config(EcoConfig(total_sat_budget=1000))
        run.counters.choices = 5
        run.absorb_worker({"choices": 7, "incremental_solves": 3,
                           "sat_conflicts_spent": 40,
                           "not_a_counter": 99})
        assert run.counters.choices == 12
        assert run.counters.incremental_solves == 3
        assert run.counters.parallel_workers == 1
        assert run.budget.sat_remaining() == 1000 - 40

    def test_absorb_worker_escalations_survive_later_assignment(self):
        run = RunSupervisor.from_config(EcoConfig())
        run.absorb_worker({"sat_escalations": 4, "sat_deescalations": 1})
        # check_pair_supervised re-assigns sat_escalations from the
        # local escalation object; the merged base must persist
        run.counters.sat_escalations = (
            run._merged_escalations + run.escalation.escalations)
        assert run.counters.sat_escalations == 4
        assert run.counters.sat_deescalations == 1

    def test_absorb_worker_propagates_degradation(self):
        run = RunSupervisor.from_config(EcoConfig())
        run.absorb_worker({}, degraded=True, degrade_reason="worker hit "
                          "deadline")
        assert run.degraded is True
        assert "deadline" in run.degrade_reason

    def test_trace_absorb_grafts_under_open_span(self):
        worker = Trace(name="worker")
        with worker.span("eco.worker", targets="o1"):
            worker.event("eco.commit", output="o1")
            with worker.span("eco.output", output="o1"):
                pass
        records = worker.records()

        parent = Trace(name="main")
        with parent.span("eco.parallel") as sp:
            parent.absorb(records, offset_s=1.5)
        assert sp.t_end is not None
        names = {s.name for s in parent.spans}
        assert {"eco.parallel", "eco.worker", "eco.output"} <= names
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))
        grafted = {s.name: s for s in parent.spans if s is not sp}
        # worker roots hang under the open parallel span; children keep
        # their worker-relative parent links (re-based ids)
        assert grafted["eco.worker"].parent_id == sp.span_id
        assert grafted["eco.output"].parent_id \
            == grafted["eco.worker"].span_id
        assert grafted["eco.worker"].t_start >= 1.5
        event = next(e for e in parent.events if e.name == "eco.commit")
        assert event.span_id == grafted["eco.worker"].span_id


class TestInlineParallelSearch:
    @pytest.fixture(autouse=True)
    def _inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_ECO_JOBS_INLINE", "1")

    def test_two_workers_fix_all_outputs(self):
        impl, spec = multi_bug_circuits(4)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, jobs=2))
        assert check_equivalence(result.patched, spec).equivalent is True
        assert set(result.per_output) == {f"o{i}" for i in range(4)}
        assert result.counters.parallel_workers == 2

    def test_matches_sequential_outcome(self):
        impl, spec = multi_bug_circuits(3)
        parallel = rectify(impl, spec,
                           EcoConfig(num_samples=8, jobs=2, seed=5))
        sequential = rectify(impl, spec,
                             EcoConfig(num_samples=8, jobs=1, seed=5))
        assert check_equivalence(parallel.patched,
                                 spec).equivalent is True
        assert check_equivalence(sequential.patched,
                                 spec).equivalent is True
        assert set(parallel.per_output) == set(sequential.per_output)
        assert sequential.counters.parallel_workers == 0

    def test_jobs_capped_by_failing_outputs(self):
        impl, spec = multi_bug_circuits(2)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, jobs=8))
        assert check_equivalence(result.patched, spec).equivalent is True
        assert result.counters.parallel_workers == 2

    def test_strict_budget_exhaustion_raises(self):
        impl, spec = multi_bug_circuits(3)
        with pytest.raises(ResourceBudgetExceeded):
            rectify(impl, spec,
                    EcoConfig(num_samples=8, jobs=2, total_sat_budget=1,
                              degrade_on_budget=False))

    def test_single_failing_output_skips_parallel_phase(self):
        impl, spec = multi_bug_circuits(1)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, jobs=4))
        assert check_equivalence(result.patched, spec).equivalent is True
        assert result.counters.parallel_workers == 0


class TestParallelVerify:
    @pytest.fixture(autouse=True)
    def _inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_ECO_JOBS_INLINE", "1")

    def test_equivalent_pair_proves_true(self):
        impl, spec = multi_bug_circuits(4)
        assert parallel_verify(spec, spec.copy(), jobs=2).equivalent is True

    def test_nonequivalent_pair_returns_counterexample(self):
        from repro.netlist.simulate import evaluate_outputs

        impl, spec = multi_bug_circuits(4)
        result = parallel_verify(impl, spec, jobs=2)
        assert result.equivalent is False
        assert result.failing_outputs
        port = result.failing_outputs[0]
        iv = evaluate_outputs(impl, result.counterexample)
        sv = evaluate_outputs(spec, result.counterexample)
        assert iv[port] != sv[port]

    def test_single_output_falls_back_to_plain_check(self):
        impl, spec = multi_bug_circuits(1)
        result = parallel_verify(impl, spec, jobs=4)
        assert result.equivalent is False
        assert result.failing_outputs == ("o0",)

    def test_matches_sequential_verdict(self):
        impl, spec = multi_bug_circuits(3)
        assert (parallel_verify(impl, spec, jobs=2).equivalent
                == check_equivalence(impl, spec).equivalent)


class TestProcessPoolSearch:
    def test_real_pool_fixes_all_outputs(self, monkeypatch):
        monkeypatch.delenv("REPRO_ECO_JOBS_INLINE", raising=False)
        impl, spec = multi_bug_circuits(3)
        result = rectify(impl, spec,
                         EcoConfig(num_samples=8, jobs=2))
        assert check_equivalence(result.patched, spec).equivalent is True
        assert set(result.per_output) == {"o0", "o1", "o2"}
        # the pool may be unavailable in restricted sandboxes, in which
        # case the engine falls back to the sequential loop
        assert result.counters.parallel_workers in (0, 2)
