"""Tests for the rectification report formatter."""

from repro.eco.config import EcoConfig
from repro.eco.engine import rectify
from repro.eco.report import format_patch_report
from repro.workloads.figures import example1_circuits


class TestFormatPatchReport:
    def test_contains_all_sections(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        text = format_patch_report(result, impl=impl, title="demo")
        assert text.startswith("demo\n====")
        assert "implementation :" in text
        assert "patch          :" in text
        assert "rewire operations:" in text
        assert "search effort" in text

    def test_without_impl(self):
        impl, spec = example1_circuits(width=2)
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        text = format_patch_report(result)
        assert "implementation :" not in text
        assert "runtime" in text

    def test_empty_patch_message(self, tiny_adder):
        result = rectify(tiny_adder, tiny_adder.copy())
        text = format_patch_report(result)
        assert "none (already equivalent)" in text
