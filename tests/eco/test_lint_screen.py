"""Adversarial tests of the pre-SAT lint screen.

The candidate filter in :class:`RewiringContext` normally removes nets
from the rectification point's fanout cone, so cycle-forming candidates
never reach the engine.  Here we sabotage that filter: every legitimate
candidate is shadowed by an *imposter* drawn from the fanout cone that
carries an identical sampling-domain function.  Xi(c) cannot tell the
two apart, the imposter ranks first, and only the static lint screen
stands between it and a wasted SAT call.
"""

import pytest

from repro.cec.equivalence import check_equivalence
from repro.errors import EcoError, PatchStructureError
from repro.eco.config import EcoConfig
from repro.eco.engine import rectify
from repro.eco.rewiring import RewireCandidate, RewiringContext
from repro.eco.validate import assert_patch_structure
from repro.netlist.circuit import Circuit


def buggy_pair():
    """OR where the spec wants AND — the classic one-gate bug."""
    spec = Circuit("spec")
    spec.add_inputs(["a", "b", "c"])
    g1 = spec.and_("a", "b", name="g1")
    spec.set_output("o", spec.xor(g1, "c"))
    impl = Circuit("impl")
    impl.add_inputs(["a", "b", "c"])
    h1 = impl.or_("a", "b", name="h1")
    impl.set_output("o", impl.xor(h1, "c"))
    return impl, spec


@pytest.fixture
def sabotaged_candidates(monkeypatch):
    """Disable the fanout-cone candidate filter, adversarially.

    Each non-trivial candidate is preceded by a cycle-forming imposter
    with the same z-function, utility, and level, so every ordering the
    engine applies (cost, utility, Xi membership) tries the imposter
    first.
    """
    orig = RewiringContext._candidates_for_pin

    def adversarial(self, pin, forbidden=None):
        out = orig(self, pin, forbidden)
        if pin.is_output_port or len(out) < 2:
            return out
        cone = sorted(self.screen.fanout_cone(pin.owner))
        shadowed = [out[0]]  # keep the trivial candidate at index 0
        for cand in out[1:]:
            shadowed.append(RewireCandidate(
                net=cone[0], from_spec=False, utility=cand.utility,
                z_function=cand.z_function, level=cand.level))
            shadowed.append(cand)
        return shadowed

    monkeypatch.setattr(RewiringContext, "_candidates_for_pin",
                        adversarial)


class TestLintScreenBlocksCycles:
    def test_imposters_rejected_before_sat(self, sabotaged_candidates):
        impl, spec = buggy_pair()
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        counters = result.counters

        # the imposters were selected and statically rejected ...
        assert counters.lint_rejects >= 1
        # ... at zero solver cost: every screened candidate is accounted
        # for as lint-rejected, sim-rejected, or SAT-validated, so a
        # lint rejection can never coincide with a SAT call
        assert counters.lint_screens == (counters.lint_rejects
                                         + counters.sim_rejects
                                         + counters.sat_validations)
        # the run still converges on a correct patch
        assert check_equivalence(result.patched, spec).equivalent is True

    def test_clean_run_screens_without_rejecting(self):
        impl, spec = buggy_pair()
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        assert result.counters.lint_screens >= 1
        assert result.counters.lint_rejects == 0


class TestPatchStructureError:
    def cyclic(self) -> Circuit:
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g")
        c.or_("g", "a", name="h")
        c.set_output("o", "h")
        c.gates["g"].fanins[0] = "h"   # g <-> h cycle
        return c

    def test_raises_with_diagnostics(self):
        with pytest.raises(PatchStructureError) as exc:
            assert_patch_structure(self.cyclic(), ops=[])
        err = exc.value
        assert err.diagnostics
        assert any("NL010" in str(d) for d in err.diagnostics)

    def test_is_an_eco_error(self):
        assert issubclass(PatchStructureError, EcoError)

    def test_well_formed_patch_passes(self):
        impl, _ = buggy_pair()
        assert assert_patch_structure(impl, ops=[]) is None
