"""Tests for full-domain validation of rewire candidates."""

import pytest

from repro.eco.patch import RewireOp
from repro.eco.validate import (
    SimulationFilter,
    apply_rewires,
    clone_spec_cone,
    rewire_acyclic,
    topological_constraint_ok,
    validate_rewire,
)
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.simulate import random_patterns
from repro.netlist.validate import is_well_formed


def chain_circuit():
    c = Circuit("chain")
    c.add_inputs(["a", "b"])
    c.and_("a", "b", name="g1")
    c.or_("g1", "a", name="g2")
    c.xor("g2", "b", name="g3")
    c.set_output("o", "g3")
    return c


class TestTopologicalConstraint:
    def test_connected_pins_rejected(self):
        c = chain_circuit()
        # g1 feeds g2: a path connects the pins
        assert not topological_constraint_ok(
            c, [Pin.gate("g1", 0), Pin.gate("g2", 1)])

    def test_disconnected_pins_accepted(self):
        c = chain_circuit()
        c.and_("a", "b", name="h1")
        c.set_output("p", "h1")
        assert topological_constraint_ok(
            c, [Pin.gate("g1", 0), Pin.gate("h1", 0)])

    def test_output_port_pins_always_fine(self):
        c = chain_circuit()
        assert topological_constraint_ok(
            c, [Pin.output("o"), Pin.gate("g1", 0)])

    def test_single_pin_fine(self):
        c = chain_circuit()
        assert topological_constraint_ok(c, [Pin.gate("g2", 0)])


class TestAcyclicity:
    def test_downstream_source_rejected(self):
        c = chain_circuit()
        ops = [RewireOp(Pin.gate("g1", 0), "g3")]
        assert not rewire_acyclic(c, ops)

    def test_upstream_source_accepted(self):
        c = chain_circuit()
        ops = [RewireOp(Pin.gate("g3", 0), "g1")]
        assert rewire_acyclic(c, ops)

    def test_spec_sources_always_fine(self):
        c = chain_circuit()
        ops = [RewireOp(Pin.gate("g1", 0), "whatever", from_spec=True)]
        assert rewire_acyclic(c, ops)

    def test_joint_cycle_through_two_rewires(self):
        c = Circuit("j")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="x")
        c.or_("a", "b", name="y")
        c.set_output("o", c.xor("x", "y"))
        # x[0] <- y and y[0] <- x individually fine, together a cycle
        ops = [RewireOp(Pin.gate("x", 0), "y"),
               RewireOp(Pin.gate("y", 0), "x")]
        assert not rewire_acyclic(c, ops)
        assert rewire_acyclic(c, ops[:1])

    def test_edge_removed_by_rewire_ignored(self):
        c = chain_circuit()
        # rewiring g2[0] (currently g1) to 'a' removes the g1->g2 edge;
        # simultaneously rewiring g1[0] to g2 is then... still a cycle
        # via g2 -> g3? no: g1 feeds nothing else, g2's sinks: g3.
        ops = [RewireOp(Pin.gate("g2", 0), "a"),
               RewireOp(Pin.gate("g1", 0), "g2")]
        assert rewire_acyclic(c, ops)


class TestCloning:
    def spec(self):
        s = Circuit("spec")
        s.add_inputs(["a", "b"])
        s.and_("a", "b", name="h1")
        s.not_("h1", name="h2")
        s.set_output("o", "h2")
        return s

    def test_clone_cone(self):
        work = chain_circuit()
        clone_map = {}
        top = clone_spec_cone(work, self.spec(), "h2", clone_map)
        assert top in work.gates
        assert clone_map == {"h1": "eco$h1", "h2": "eco$h2"}
        assert is_well_formed(work)

    def test_clone_reuse(self):
        work = chain_circuit()
        clone_map = {}
        spec = self.spec()
        clone_spec_cone(work, spec, "h1", clone_map)
        gates_before = work.num_gates
        top = clone_spec_cone(work, spec, "h2", clone_map)
        assert work.num_gates == gates_before + 1  # only h2 added
        assert top == "eco$h2"

    def test_clone_of_input_is_identity(self):
        work = chain_circuit()
        assert clone_spec_cone(work, self.spec(), "a", {}) == "a"

    def test_apply_rewires_reports_new_gates(self):
        work = chain_circuit()
        clone_map = {}
        ops = [RewireOp(Pin.output("o"), "h2", from_spec=True)]
        new = apply_rewires(work, self.spec(), ops, clone_map)
        assert new == {"eco$h1", "eco$h2"}
        assert work.outputs["o"] == "eco$h2"


class TestValidateRewire:
    def pair(self):
        impl = Circuit("impl")
        impl.add_inputs(["a", "b", "c"])
        impl.or_("a", "b", name="g1")          # should be AND
        impl.and_("g1", "c", name="g2")
        impl.set_output("o", "g2")
        impl.set_output("keep", impl.xor("a", "c", name="g3"))
        spec = Circuit("spec")
        spec.add_inputs(["a", "b", "c"])
        spec.and_("a", "b", name="h1")
        spec.and_("h1", "c", name="h2")
        spec.set_output("o", "h2")
        spec.set_output("keep", spec.xor("a", "c", name="h3"))
        return impl, spec

    def test_correct_rewire_accepted(self):
        impl, spec = self.pair()
        ops = [RewireOp(Pin.gate("g2", 0), "h1", from_spec=True)]
        outcome = validate_rewire(impl, spec, ops, ["o"], {})
        assert outcome.valid
        assert outcome.fixed == ("o",)
        assert outcome.patched is not None
        assert is_well_formed(outcome.patched)

    def test_wrong_rewire_rejected(self):
        impl, spec = self.pair()
        ops = [RewireOp(Pin.gate("g2", 0), "a")]  # a is not a fix
        outcome = validate_rewire(impl, spec, ops, ["o"], {})
        assert not outcome.valid

    def test_damaging_rewire_rejected(self):
        impl, spec = self.pair()
        # fixes nothing and breaks the passing output 'keep'
        ops = [RewireOp(Pin.gate("g3", 0), "b")]
        outcome = validate_rewire(impl, spec, ops, ["o"], {})
        assert not outcome.valid

    def test_original_untouched(self):
        impl, spec = self.pair()
        ops = [RewireOp(Pin.gate("g2", 0), "h1", from_spec=True)]
        validate_rewire(impl, spec, ops, ["o"], {})
        assert impl.gates["g2"].fanins[0] == "g1"

    def test_cyclic_candidate_rejected_early(self):
        impl, spec = self.pair()
        ops = [RewireOp(Pin.gate("g1", 0), "g2")]
        outcome = validate_rewire(impl, spec, ops, ["o"], {})
        assert not outcome.valid


class TestSimulationFilter:
    def test_correct_candidate_passes(self):
        impl = Circuit("impl")
        impl.add_inputs(["a", "b"])
        impl.or_("a", "b", name="g1")
        impl.set_output("o", "g1")
        spec = Circuit("spec")
        spec.add_inputs(["a", "b"])
        spec.and_("a", "b", name="h1")
        spec.set_output("o", "h1")
        import random
        words = [random_patterns(impl.inputs, random.Random(0))]
        filt = SimulationFilter(impl, spec, words)
        good = [RewireOp(Pin.output("o"), "h1", from_spec=True)]
        bad = [RewireOp(Pin.gate("g1", 0), "b")]
        assert filt.passes(good, "o", ["o"])
        assert not filt.passes(bad, "o", ["o"])

    def test_other_failing_outputs_ignored(self):
        impl = Circuit("impl")
        impl.add_inputs(["a", "b"])
        impl.set_output("o1", impl.or_("a", "b"))
        impl.set_output("o2", impl.xor("a", "b"))
        spec = Circuit("spec")
        spec.add_inputs(["a", "b"])
        spec.set_output("o1", spec.and_("a", "b"))
        spec.set_output("o2", spec.nor("a", "b"))
        import random
        words = [random_patterns(impl.inputs, random.Random(0))]
        filt = SimulationFilter(impl, spec, words)
        fix_o1 = [RewireOp(Pin.output("o1"), spec.outputs["o1"],
                           from_spec=True)]
        # o2 is still wrong but is in the failing list: allowed
        assert filt.passes(fix_o1, "o1", ["o1", "o2"])
        # if o2 were considered passing, the same ops must be rejected
        assert not filt.passes(fix_o1, "o1", ["o1"])


class TestBatchScreenParity:
    """`passes_batch` must be result-identical to per-candidate
    `passes`, vectorized or not."""

    @staticmethod
    def _random_candidates(impl, spec, rng, count):
        from repro.netlist.traverse import topological_order

        gates = list(impl.gates)
        ports = list(impl.outputs)
        impl_nets = list(topological_order(impl)) + list(impl.inputs)
        spec_nets = list(topological_order(spec)) + list(spec.inputs)
        candidates = []
        for _ in range(count):
            ops = []
            for _ in range(rng.choice((1, 1, 1, 2, 3))):
                if rng.random() < 0.25:
                    pin = Pin.output(rng.choice(ports))
                else:
                    g = rng.choice(gates)
                    pin = Pin.gate(g, rng.randrange(
                        len(impl.gates[g].fanins)))
                if rng.random() < 0.5:
                    ops.append(RewireOp(pin, rng.choice(spec_nets),
                                        from_spec=True))
                else:
                    ops.append(RewireOp(pin, rng.choice(impl_nets)))
            candidates.append(ops)
        return candidates

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_batch_matches_scalar_oracle(self, backend):
        import random

        from repro.netlist import simd
        from tests.conftest import make_random_circuit

        if backend == "numpy" and not simd.HAVE_NUMPY:
            pytest.skip("numpy not installed")
        previous = simd.get_backend()
        try:
            for seed in range(12):
                impl = make_random_circuit(seed)
                spec = make_random_circuit(seed + 500)
                rng = random.Random(seed + 31)
                words = [random_patterns(impl.inputs, rng)
                         for _ in range(3)]
                filt = SimulationFilter(impl, spec, words)
                candidates = self._random_candidates(
                    impl, spec, rng, 12)
                target = "y0"
                failing = ["y0", "y1"]
                simd.set_backend("python")
                expected = [filt.passes(ops, target, failing)
                            for ops in candidates]
                simd.set_backend(backend)
                got = filt.passes_batch(candidates, target, failing)
                assert got == expected
        finally:
            simd.set_backend(previous)
