"""Tests for the symbolic sampling domain."""

import pytest

from repro.errors import EcoError
from repro.bdd.manager import TRUE, BddManager
from repro.eco.sampling import SamplingDomain
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import evaluate_outputs
from tests.conftest import make_random_circuit


def make_domain(samples, inputs):
    return SamplingDomain(BddManager(), samples, inputs)


class TestConstruction:
    def test_empty_samples_rejected(self):
        with pytest.raises(EcoError):
            make_domain([], ["a"])

    def test_z_variable_count(self):
        inputs = ["a"]
        s = {"a": True}
        assert len(make_domain([s], inputs).z_vars) == 1
        assert len(make_domain([s] * 2, inputs).z_vars) == 1
        assert len(make_domain([s] * 3, inputs).z_vars) == 2
        assert len(make_domain([s] * 5, inputs).z_vars) == 3

    def test_missing_input_in_sample(self):
        with pytest.raises(EcoError):
            make_domain([{"a": True}], ["a", "b"])

    def test_padding_repeats_last_sample(self):
        samples = [{"a": True}, {"a": False}, {"a": True}]
        d = make_domain(samples, ["a"])
        assert len(d.samples) == 4
        assert d.samples[3] == samples[-1]


class TestSamplingFunction:
    def test_g_maps_codes_to_samples(self):
        samples = [
            {"a": True, "b": False},
            {"a": False, "b": False},
            {"a": True, "b": True},
        ]
        d = make_domain(samples, ["a", "b"])
        m = d.manager
        for k, sample in enumerate(samples):
            # evaluate g_i at the assignment encoding sample k
            assignment = m.pick_assignment(d.code_of(k),
                                           variables=d.z_vars)
            for name in ("a", "b"):
                got = m.evaluate(d.input_functions[name], assignment)
                assert got == sample[name], (k, name)

    def test_sample_of_assignment_roundtrip(self):
        samples = [{"a": bool(k & 1), "b": bool(k & 2)} for k in range(4)]
        d = make_domain(samples, ["a", "b"])
        m = d.manager
        for k in range(4):
            assignment = m.pick_assignment(d.code_of(k),
                                           variables=d.z_vars)
            assert d.sample_of_assignment(assignment) == samples[k]

    def test_valid_codes_counts_distinct_samples(self):
        samples = [{"a": True}, {"a": False}, {"a": True}]
        d = make_domain(samples, ["a"])
        m = d.manager
        assert m.satcount(d.valid_codes(), num_vars=len(d.z_vars)) == 3

    def test_count_in_domain(self):
        samples = [{"a": True}, {"a": False}, {"a": True}]
        d = make_domain(samples, ["a"])
        # 'a' holds on samples 0 and 2
        assert d.count_in_domain(d.input_functions["a"]) == 2

    def test_count_in_domain_rejects_foreign_support(self):
        d = make_domain([{"a": True}, {"a": False}], ["a"])
        extra = d.manager.add_var()
        with pytest.raises(EcoError):
            d.count_in_domain(d.manager.var(extra))


class TestCastCircuit:
    def test_cast_matches_per_sample_simulation(self):
        c = make_random_circuit(6, n_inputs=4, n_gates=15)
        import random
        rng = random.Random(1)
        samples = [{n: bool(rng.getrandbits(1)) for n in c.inputs}
                   for _ in range(6)]
        d = make_domain(samples, c.inputs)
        values = d.cast_circuit(c)
        m = d.manager
        for k, sample in enumerate(samples):
            assignment = m.pick_assignment(d.code_of(k),
                                           variables=d.z_vars)
            sim = evaluate_outputs(c, sample)
            for port, net in c.outputs.items():
                assert m.evaluate(values[net], assignment) == sim[port]

    def test_extra_inputs_default_false(self):
        c = Circuit()
        c.add_inputs(["a", "extra"])
        c.set_output("o", c.or_("a", "extra"))
        d = make_domain([{"a": True}, {"a": False}], ["a"])
        values = d.cast_circuit(c)
        m = d.manager
        # with extra=False, o == a on the domain
        assert values[c.outputs["o"]] == d.input_functions["a"]

    def test_extra_inputs_overridable(self):
        c = Circuit()
        c.add_inputs(["a", "extra"])
        c.set_output("o", c.or_("a", "extra"))
        d = make_domain([{"a": False}], ["a"])
        from repro.bdd.manager import TRUE
        values = d.cast_circuit(c, extra_inputs={"extra": TRUE})
        assert values[c.outputs["o"]] == TRUE
