"""Unit and property tests for the ROBDD manager."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BddError, BddNodeLimitError
from repro.bdd.manager import FALSE, TRUE, BddManager


def brute_count(fn, n):
    return sum(
        1 for bits in itertools.product([False, True], repeat=n)
        if fn(dict(enumerate(bits)))
    )


@pytest.fixture
def m4() -> BddManager:
    return BddManager(4)


class TestBasics:
    def test_terminals(self, m4):
        assert m4.is_terminal(FALSE)
        assert m4.is_terminal(TRUE)
        assert not m4.is_terminal(m4.var(0))

    def test_var_and_nvar(self, m4):
        a = m4.var(0)
        na = m4.nvar(0)
        assert m4.not_(a) == na
        assert m4.not_(na) == a

    def test_literal(self, m4):
        assert m4.literal(1, True) == m4.var(1)
        assert m4.literal(1, False) == m4.nvar(1)

    def test_unallocated_variable(self, m4):
        with pytest.raises(BddError):
            m4.var(4)

    def test_add_var_grows(self, m4):
        v = m4.add_var()
        assert v == 4
        assert m4.var(4) != FALSE

    def test_canonicity(self, m4):
        a, b = m4.var(0), m4.var(1)
        f1 = m4.and_(a, b)
        f2 = m4.and_(b, a)
        assert f1 == f2  # pointer equality == function equality

    def test_node_limit(self):
        m = BddManager(8, node_limit=10)
        with pytest.raises(BddNodeLimitError):
            acc = TRUE
            for i in range(8):
                acc = m.xor(acc, m.var(i)) if i else m.var(i)


class TestConnectives:
    def test_ite_shortcuts(self, m4):
        a, b = m4.var(0), m4.var(1)
        assert m4.ite(TRUE, a, b) == a
        assert m4.ite(FALSE, a, b) == b
        assert m4.ite(a, b, b) == b
        assert m4.ite(a, TRUE, FALSE) == a

    def test_and_or_units(self, m4):
        a = m4.var(0)
        assert m4.and_() == TRUE
        assert m4.or_() == FALSE
        assert m4.and_(a) == a
        assert m4.or_(a) == a
        assert m4.and_(a, FALSE) == FALSE
        assert m4.or_(a, TRUE) == TRUE

    def test_xor_xnor(self, m4):
        a, b = m4.var(0), m4.var(1)
        assert m4.xor(a, a) == FALSE
        assert m4.xnor(a, a) == TRUE
        assert m4.xor(a, b) == m4.not_(m4.xnor(a, b))

    def test_implies_equiv_mux(self, m4):
        a, b = m4.var(0), m4.var(1)
        assert m4.implies(FALSE, a) == TRUE
        assert m4.implies(a, a) == TRUE
        assert m4.equiv(a, b) == m4.xnor(a, b)
        assert m4.mux(a, b, TRUE) == m4.or_(m4.not_(a), b) or True
        # mux(s, d0, d1) = s ? d1 : d0
        s = m4.var(2)
        assert m4.mux(s, FALSE, TRUE) == s

    def test_implies_check(self, m4):
        a, b = m4.var(0), m4.var(1)
        ab = m4.and_(a, b)
        assert m4.implies_check(ab, a)
        assert not m4.implies_check(a, ab)


class TestEvaluateAndCount:
    def test_evaluate(self, m4):
        a, b = m4.var(0), m4.var(1)
        f = m4.xor(a, b)
        assert m4.evaluate(f, {0: True, 1: False})
        assert not m4.evaluate(f, {0: True, 1: True})

    def test_evaluate_missing_var(self, m4):
        f = m4.and_(m4.var(0), m4.var(1))
        with pytest.raises(BddError):
            m4.evaluate(f, {0: True})

    def test_satcount_simple(self, m4):
        a, b = m4.var(0), m4.var(1)
        assert m4.satcount(FALSE) == 0
        assert m4.satcount(TRUE) == 16
        assert m4.satcount(a) == 8
        assert m4.satcount(m4.and_(a, b)) == 4
        assert m4.satcount(m4.or_(a, b)) == 12

    def test_satcount_explicit_num_vars(self, m4):
        a = m4.var(0)
        assert m4.satcount(a, num_vars=1) == 1
        assert m4.satcount(a, num_vars=2) == 2

    def test_satcount_rejects_uncovered_support(self, m4):
        f = m4.var(3)
        with pytest.raises(BddError):
            m4.satcount(f, num_vars=2)

    def test_support_and_size(self, m4):
        a, c = m4.var(0), m4.var(2)
        f = m4.and_(a, c)
        assert m4.support(f) == frozenset({0, 2})
        assert m4.size(f) == 2
        assert m4.support(TRUE) == frozenset()
        assert m4.size(FALSE) == 0

    def test_pick_assignment(self, m4):
        a, b = m4.var(0), m4.var(1)
        f = m4.and_(a, m4.not_(b))
        sol = m4.pick_assignment(f)
        assert m4.evaluate(f, {**{0: False, 1: False}, **sol})
        assert m4.pick_assignment(FALSE) is None

    def test_pick_assignment_fills_variables(self, m4):
        f = m4.var(0)
        sol = m4.pick_assignment(f, variables=[0, 1, 2],
                                 prefer=lambda v: True)
        assert sol == {0: True, 1: True, 2: True}

    def test_sat_cubes_cover(self, m4):
        a, b = m4.var(0), m4.var(1)
        f = m4.or_(a, b)
        cubes = list(m4.sat_cubes(f))
        # every cube satisfies f; together they cover all solutions
        total = 0
        for cube in cubes:
            free = 4 - len(cube)
            total += 1 << free
        assert total == m4.satcount(f)

    def test_cube(self, m4):
        c = m4.cube({0: True, 2: False})
        assert m4.evaluate(c, {0: True, 1: False, 2: False, 3: False})
        assert not m4.evaluate(c, {0: True, 1: False, 2: True, 3: False})
        assert m4.cube({}) == TRUE


class TestQuantification:
    def test_exists(self, m4):
        a, b = m4.var(0), m4.var(1)
        f = m4.and_(a, b)
        assert m4.exists(f, [0]) == b
        assert m4.exists(f, [0, 1]) == TRUE
        assert m4.exists(f, []) == f

    def test_forall(self, m4):
        a, b = m4.var(0), m4.var(1)
        f = m4.or_(a, b)
        assert m4.forall(f, [0]) == b
        assert m4.forall(f, [0, 1]) == FALSE

    def test_quantify_irrelevant_var(self, m4):
        a = m4.var(0)
        assert m4.exists(a, [3]) == a
        assert m4.forall(a, [3]) == a


class TestRestrictCompose:
    def test_restrict(self, m4):
        a, b = m4.var(0), m4.var(1)
        f = m4.xor(a, b)
        assert m4.restrict(f, {0: True}) == m4.not_(b)
        assert m4.restrict(f, {0: False}) == b
        assert m4.restrict(f, {}) == f

    def test_compose(self, m4):
        a, b, c = m4.var(0), m4.var(1), m4.var(2)
        f = m4.and_(a, b)
        g = m4.or_(b, c)
        composed = m4.compose(f, 0, g)
        # (b|c) & b == b
        assert composed == b

    def test_vector_compose_simultaneous(self, m4):
        a, b = m4.var(0), m4.var(1)
        f = m4.xor(a, b)
        # swap a and b simultaneously: function unchanged
        swapped = m4.vector_compose(f, {0: b, 1: a})
        assert swapped == f

    def test_vector_compose_to_constants(self, m4):
        a, b = m4.var(0), m4.var(1)
        f = m4.and_(a, b)
        assert m4.vector_compose(f, {0: TRUE, 1: TRUE}) == TRUE
        assert m4.vector_compose(f, {0: FALSE}) == FALSE


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2 ** 16 - 1))
def test_bdd_matches_truth_table(table):
    """Property: building a 4-var function from its minterms reproduces
    exactly the truth table (evaluate + satcount agree)."""
    m = BddManager(4)
    f = FALSE
    for k in range(16):
        if table >> k & 1:
            cube = m.cube({i: bool(k >> i & 1) for i in range(4)})
            f = m.or_(f, cube)
    for k in range(16):
        want = bool(table >> k & 1)
        got = m.evaluate(f, {i: bool(k >> i & 1) for i in range(4)})
        assert got == want
    assert m.satcount(f) == bin(table).count("1")


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255))
def test_demorgan_laws_hold(ta, tb):
    """Property: ~(f & g) == ~f | ~g on arbitrary 3-var functions."""
    m = BddManager(3)

    def from_table(t):
        f = FALSE
        for k in range(8):
            if t >> k & 1:
                f = m.or_(f, m.cube({i: bool(k >> i & 1) for i in range(3)}))
        return f

    f, g = from_table(ta), from_table(tb)
    assert m.not_(m.and_(f, g)) == m.or_(m.not_(f), m.not_(g))
    assert m.not_(m.or_(f, g)) == m.and_(m.not_(f), m.not_(g))


class TestDotExport:
    def test_dot_structure(self):
        from repro.bdd.dot import to_dot
        m = BddManager(2)
        f = m.and_(m.var(0), m.var(1))
        text = to_dot(m, {"f": f}, var_names={0: "a", 1: "b"})
        assert text.startswith("digraph")
        assert '"a"' in text and '"b"' in text
        assert "style=dashed" in text
        assert "r_f" in text

    def test_terminal_roots(self):
        from repro.bdd.dot import to_dot
        m = BddManager(1)
        text = to_dot(m, {"T": 1, "F": 0})
        assert "r_T -> nT" in text
        assert "r_F -> nF" in text

    def test_write_dot(self, tmp_path):
        from repro.bdd.dot import write_dot
        m = BddManager(2)
        f = m.xor(m.var(0), m.var(1))
        path = str(tmp_path / "f.dot")
        write_dot(m, {"xor": f}, path)
        with open(path) as fh:
            assert "digraph" in fh.read()

    def test_label_sanitization(self):
        from repro.bdd.dot import to_dot
        m = BddManager(1)
        text = to_dot(m, {"H(t) & valid": m.var(0)})
        assert "r_H_t____valid" in text
