"""Tests for the netlist <-> BDD bridge."""

import itertools

import pytest

from repro.errors import BddError
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.netbridge import apply_gate, circuit_to_bdds, net_functions
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.simulate import evaluate_outputs
from tests.conftest import make_random_circuit


class TestApplyGate:
    def test_all_types_against_eval(self):
        m = BddManager(3)
        vars3 = [m.var(i) for i in range(3)]
        from repro.netlist.gate import eval_gate_bool
        cases = [
            (GateType.AND, 2), (GateType.OR, 2), (GateType.XOR, 2),
            (GateType.NAND, 2), (GateType.NOR, 2), (GateType.XNOR, 2),
            (GateType.NOT, 1), (GateType.BUF, 1), (GateType.MUX, 3),
            (GateType.AND, 3), (GateType.XOR, 3),
        ]
        for gtype, arity in cases:
            node = apply_gate(m, gtype, vars3[:arity])
            for bits in itertools.product([False, True], repeat=arity):
                env = dict(enumerate(bits))
                env.update({i: False for i in range(3)})
                env.update(dict(enumerate(bits)))
                assert m.evaluate(node, env) == \
                    eval_gate_bool(gtype, list(bits)), (gtype, bits)

    def test_constants(self):
        m = BddManager(1)
        assert apply_gate(m, GateType.CONST0, []) == FALSE
        assert apply_gate(m, GateType.CONST1, []) == TRUE


class TestCircuitToBdds:
    def test_matches_simulation(self):
        for seed in range(8):
            c = make_random_circuit(seed, n_inputs=5, n_gates=18)
            manager, var_map, outs = circuit_to_bdds(c)
            for bits in itertools.product([False, True], repeat=5):
                assignment = dict(zip(c.inputs, bits))
                sim = evaluate_outputs(c, assignment)
                env = {var_map[n]: v for n, v in assignment.items()}
                for port, node in outs.items():
                    assert manager.evaluate(node, env) == sim[port], seed

    def test_var_order_respected(self, tiny_adder):
        order = ["cin", "b", "a"]
        manager, var_map, outs = circuit_to_bdds(tiny_adder,
                                                 var_order=order)
        assert var_map == {"cin": 0, "b": 1, "a": 2}

    def test_bad_var_order(self, tiny_adder):
        with pytest.raises(BddError):
            circuit_to_bdds(tiny_adder, var_order=["a", "b"])

    def test_existing_manager_extended(self, tiny_adder):
        m = BddManager(2)
        manager, var_map, outs = circuit_to_bdds(tiny_adder, manager=m)
        assert manager is m
        assert min(var_map.values()) == 2


class TestNetFunctions:
    def test_missing_input_function(self, tiny_adder):
        m = BddManager(1)
        with pytest.raises(BddError):
            net_functions(tiny_adder, m, {"a": m.var(0)})

    def test_roots_limit_computation(self, tiny_adder):
        m = BddManager(3)
        fns = {n: m.var(i) for i, n in enumerate(tiny_adder.inputs)}
        values = net_functions(tiny_adder, m, fns, roots=["g"])
        assert "g" in values
        assert "cout" not in values
