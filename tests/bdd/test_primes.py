"""Unit and property tests for prime-cube enumeration."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.cube import Cube
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.primes import all_primes, expand_to_prime


def from_table(m: BddManager, table: int, n: int) -> int:
    f = FALSE
    for k in range(1 << n):
        if table >> k & 1:
            f = m.or_(f, m.cube({i: bool(k >> i & 1) for i in range(n)}))
    return f


class TestExpandToPrime:
    def test_minterm_expands(self):
        m = BddManager(3)
        a, b = m.var(0), m.var(1)
        f = m.and_(a, b)  # only prime: a & b
        seed = Cube({0: True, 1: True, 2: True})
        prime = expand_to_prime(m, seed, f)
        assert prime == Cube({0: True, 1: True})

    def test_non_implicant_rejected(self):
        m = BddManager(2)
        f = m.var(0)
        with pytest.raises(ValueError):
            expand_to_prime(m, Cube({1: True}), f)

    def test_tautology_expands_to_empty_cube(self):
        m = BddManager(2)
        prime = expand_to_prime(m, Cube({0: True, 1: False}), TRUE)
        assert len(prime) == 0

    def test_drop_order_respected(self):
        m = BddManager(2)
        f = m.or_(m.var(0), m.var(1))  # a | b
        seed = Cube({0: True, 1: True})
        # dropping 1 first leaves prime a; dropping 0 first leaves prime b
        assert expand_to_prime(m, seed, f, drop_order=[1, 0]) == \
            Cube({0: True})
        assert expand_to_prime(m, seed, f, drop_order=[0, 1]) == \
            Cube({1: True})


class TestEnumeratePrimes:
    def test_known_function(self):
        m = BddManager(4)
        a, b, c, d = (m.var(i) for i in range(4))
        f = m.or_(m.and_(a, b), m.and_(c, d))
        primes = set(all_primes(m, f))
        assert primes == {Cube({0: True, 1: True}),
                          Cube({2: True, 3: True})}

    def test_limit(self):
        m = BddManager(4)
        f = m.or_(*(m.var(i) for i in range(4)))
        assert len(all_primes(m, f, limit=2)) == 2

    def test_false_has_no_primes(self):
        m = BddManager(2)
        assert all_primes(m, FALSE) == []

    def test_true_single_empty_prime(self):
        m = BddManager(2)
        primes = all_primes(m, TRUE)
        assert primes == [Cube({})]


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 255))
def test_primes_cover_and_imply(table):
    """Property: each prime implies f; the primes together cover f."""
    m = BddManager(3)
    f = from_table(m, table, 3)
    primes = all_primes(m, f)
    cover = FALSE
    for p in primes:
        node = p.to_bdd(m)
        assert m.implies_check(node, f)
        # primality: dropping any literal breaks the implication
        for v, _ in p:
            weakened = p.without(v).to_bdd(m)
            assert not m.implies_check(weakened, f)
        cover = m.or_(cover, node)
    assert cover == f


class TestCube:
    def test_literals_and_access(self):
        c = Cube({3: True, 1: False})
        assert len(c) == 2
        assert c.value(3) is True
        assert 1 in c and 2 not in c
        with pytest.raises(KeyError):
            c.value(2)

    def test_without_and_restrict(self):
        c = Cube({0: True, 1: False, 2: True})
        assert c.without(1) == Cube({0: True, 2: True})
        assert c.restricted_to([0, 1]) == Cube({0: True, 1: False})

    def test_agrees_with(self):
        c = Cube({0: True})
        assert c.agrees_with({0: True, 1: False})
        assert not c.agrees_with({0: False})

    def test_hash_eq_repr(self):
        assert Cube({0: True}) == Cube({0: True})
        assert len({Cube({0: True}), Cube({0: True})}) == 1
        assert "v0" in repr(Cube({0: True}))
        assert repr(Cube({})) == "Cube(1)"
