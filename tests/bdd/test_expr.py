"""Unit tests for the Bdd operator wrapper."""

import pytest

from repro.errors import BddError
from repro.bdd.expr import Bdd
from repro.bdd.manager import BddManager


@pytest.fixture
def env():
    m = BddManager(3)
    return m, Bdd.variable(m, 0), Bdd.variable(m, 1), Bdd.variable(m, 2)


class TestOperators:
    def test_and_or_xor_invert(self, env):
        m, a, b, c = env
        f = (a & b) | ~c
        assert f.evaluate({0: True, 1: True, 2: True})
        assert not f.evaluate({0: False, 1: True, 2: True})
        assert (a ^ a).is_false
        assert (a | ~a).is_true

    def test_mixing_with_bool_constants(self, env):
        m, a, b, c = env
        assert (a & True) == a
        assert (a & False).is_false
        assert (a | True).is_true
        assert (a ^ True) == ~a

    def test_implies_equiv_ite(self, env):
        m, a, b, c = env
        assert a.implies(a).is_true
        assert a.equiv(a).is_true
        assert a.ite(b, c) == ((a & b) | (~a & c))

    def test_reflected_operators(self, env):
        m, a, b, c = env
        assert (True & a) == a
        assert (False | a) == a

    def test_mixing_managers_rejected(self, env):
        m, a, b, c = env
        other = Bdd.variable(BddManager(1), 0)
        with pytest.raises(BddError):
            a & other

    def test_bool_coercion_raises(self, env):
        m, a, b, c = env
        with pytest.raises(BddError):
            bool(a)

    def test_bad_operand(self, env):
        m, a, b, c = env
        with pytest.raises(BddError):
            a & "nope"


class TestQueries:
    def test_constructors(self, env):
        m, a, b, c = env
        assert Bdd.true(m).is_true
        assert Bdd.false(m).is_false

    def test_satcount_and_support(self, env):
        m, a, b, c = env
        f = a & b
        assert f.satcount() == 2
        assert f.satcount(2) == 1
        assert f.support() == frozenset({0, 1})
        assert f.size() == 2

    def test_quantifiers(self, env):
        m, a, b, c = env
        f = a & b
        assert f.exists([0]) == b
        assert f.forall([0]).is_false

    def test_restrict_compose(self, env):
        m, a, b, c = env
        f = a ^ b
        assert f.restrict({0: True}) == ~b
        assert f.compose(0, c) == (c ^ b)

    def test_hash_and_eq(self, env):
        m, a, b, c = env
        assert (a & b) == (b & a)
        assert len({a & b, b & a}) == 1
        assert (a == "x") is False or True  # NotImplemented path

    def test_repr(self, env):
        m, a, b, c = env
        assert "node" in repr(a)
