"""Tests for rebuild-based variable reordering."""

import itertools

from repro.bdd.manager import BddManager
from repro.bdd.reorder import greedy_sift, rebuild_with_order, shared_size


def interleaved_function(m: BddManager):
    """f = x0&x1 | x2&x3 | x4&x5 — order-sensitive size."""
    return m.or_(
        m.and_(m.var(0), m.var(1)),
        m.and_(m.var(2), m.var(3)),
        m.and_(m.var(4), m.var(5)),
    )


class TestRebuildWithOrder:
    def test_identity_order_preserves_function(self):
        m = BddManager(6)
        f = interleaved_function(m)
        new, roots = rebuild_with_order(m, [f], list(range(6)))
        for bits in itertools.product([False, True], repeat=6):
            env = dict(enumerate(bits))
            assert m.evaluate(f, env) == new.evaluate(roots[0], env)

    def test_permutation_renames_semantics(self):
        m = BddManager(2)
        f = m.and_(m.var(0), m.not_(m.var(1)))
        # order [1, 0]: new var0 = old var1
        new, roots = rebuild_with_order(m, [f], [1, 0])
        # old assignment (a0, a1) maps to new assignment (a1, a0)
        for a0, a1 in itertools.product([False, True], repeat=2):
            assert m.evaluate(f, {0: a0, 1: a1}) == \
                new.evaluate(roots[0], {0: a1, 1: a0})

    def test_bad_interleaving_grows(self):
        m = BddManager(6)
        f = interleaved_function(m)
        good = shared_size(*(lambda p: (p[0], p[1]))(
            rebuild_with_order(m, [f], [0, 1, 2, 3, 4, 5])))
        bad_mgr, bad_roots = rebuild_with_order(m, [f], [0, 2, 4, 1, 3, 5])
        assert shared_size(bad_mgr, bad_roots) > good


class TestGreedySift:
    def test_recovers_good_order(self):
        m = BddManager(6)
        # build under a deliberately bad interleaving
        f = m.or_(
            m.and_(m.var(0), m.var(3)),
            m.and_(m.var(1), m.var(4)),
            m.and_(m.var(2), m.var(5)),
        )
        before = shared_size(m, [f])
        new_mgr, new_roots, order = greedy_sift(m, [f])
        after = shared_size(new_mgr, new_roots)
        assert after <= before
        assert after == 6  # optimal: pairs adjacent
        assert sorted(order) == list(range(6))

    def test_never_increases_size(self):
        m = BddManager(4)
        f = m.xor(m.xor(m.var(0), m.var(1)), m.and_(m.var(2), m.var(3)))
        before = shared_size(m, [f])
        new_mgr, new_roots, _ = greedy_sift(m, [f])
        assert shared_size(new_mgr, new_roots) <= before

    def test_multiple_roots(self):
        m = BddManager(4)
        f = m.and_(m.var(0), m.var(2))
        g = m.and_(m.var(1), m.var(3))
        new_mgr, new_roots, order = greedy_sift(m, [f, g])
        assert len(new_roots) == 2
        assert sorted(order) == list(range(4))


def test_shared_size_counts_shared_nodes_once():
    m = BddManager(2)
    f = m.and_(m.var(0), m.var(1))
    g = f
    assert shared_size(m, [f, g]) == m.size(f)
