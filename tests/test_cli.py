"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.netlist import read_blif, write_blif
from repro.workloads.figures import example1_circuits
from tests.conftest import exhaustive_equivalent


@pytest.fixture
def eco_files(tmp_path):
    impl, spec = example1_circuits(width=2)
    impl_path = str(tmp_path / "impl.blif")
    spec_path = str(tmp_path / "spec.blif")
    write_blif(impl, impl_path)
    write_blif(spec, spec_path)
    return impl_path, spec_path


class TestStats:
    def test_prints_counts(self, eco_files, capsys):
        impl_path, _ = eco_files
        assert main(["stats", impl_path]) == 0
        out = capsys.readouterr().out
        assert "gates" in out
        assert "depth" in out


class TestCec:
    def test_equivalent(self, eco_files, capsys):
        impl_path, _ = eco_files
        assert main(["cec", impl_path, impl_path]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_not_equivalent_with_counterexample(self, eco_files, capsys):
        impl_path, spec_path = eco_files
        assert main(["cec", impl_path, spec_path]) == 1
        out = capsys.readouterr().out
        assert "NOT EQUIVALENT" in out
        assert "counterexample" in out


class TestSynth:
    def test_heavy_script_round_trip(self, eco_files, tmp_path, capsys):
        impl_path, _ = eco_files
        out_path = str(tmp_path / "out.blif")
        v_path = str(tmp_path / "out.v")
        assert main(["synth", impl_path, "-o", out_path,
                     "--script", "heavy", "--verilog", v_path]) == 0
        original = read_blif(impl_path)
        optimized = read_blif(out_path)
        assert exhaustive_equivalent(original, optimized)
        assert os.path.exists(v_path)


class TestEco:
    def test_syseco_end_to_end(self, eco_files, tmp_path, capsys):
        impl_path, spec_path = eco_files
        out_path = str(tmp_path / "patched.blif")
        code = main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "-o", out_path, "--samples", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        patched = read_blif(out_path)
        spec = read_blif(spec_path)
        assert exhaustive_equivalent(patched, spec)

    @pytest.mark.parametrize("engine", ["deltasyn", "conemap"])
    def test_baseline_engines(self, eco_files, engine, capsys):
        impl_path, spec_path = eco_files
        code = main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--engine", engine])
        assert code == 0
        assert "verified: True" in capsys.readouterr().out


class TestObservability:
    def test_trace_metrics_counters_written(self, eco_files, tmp_path,
                                            capsys):
        import json
        impl_path, spec_path = eco_files
        trace_path = str(tmp_path / "run.json")
        metrics_path = str(tmp_path / "run.prom")
        counters_path = str(tmp_path / "run.counters.json")
        code = main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--samples", "8",
                     "--trace", trace_path, "--trace-format", "chrome",
                     "--metrics", metrics_path,
                     "--counters-json", counters_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out

        payload = json.loads(open(trace_path).read())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])
        assert "repro_phase_seconds_total" in open(metrics_path).read()
        counters = json.loads(open(counters_path).read())
        assert counters["verified"] is True
        assert counters["degraded"] is False
        assert counters["counters"]["sat_validations"] > 0
        assert set(counters["per_output"].values()) <= {
            "rewire", "joint-rewire", "fixed-by-earlier", "fallback",
            "fallback-degraded"}

    def test_trace_subcommand_prints_summary(self, eco_files, tmp_path,
                                             capsys):
        impl_path, spec_path = eco_files
        trace_path = str(tmp_path / "run.jsonl")
        assert main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--samples", "8", "--trace", trace_path]) == 0
        capsys.readouterr()
        assert main(["trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "eco.rectify" in out
        assert "sat-conf" in out and "bdd-nodes" in out
        assert "phase coverage" in out

    def test_trace_warns_on_baseline_engine(self, eco_files, tmp_path,
                                            capsys):
        impl_path, spec_path = eco_files
        trace_path = str(tmp_path / "run.jsonl")
        assert main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--engine", "conemap", "--trace", trace_path]) == 0
        captured = capsys.readouterr()
        assert "only supported by the syseco engine" in captured.err
        assert not os.path.exists(trace_path)

    def test_verbose_flag_enables_logging(self, eco_files, capsys):
        import logging
        impl_path, spec_path = eco_files
        root = logging.getLogger()
        before_level, before_handlers = (root.level, root.handlers[:])
        try:
            for h in root.handlers[:]:
                root.removeHandler(h)
            assert main(["-v", "eco", "--impl", impl_path,
                         "--spec", spec_path, "--samples", "8"]) == 0
            captured = capsys.readouterr()
            assert "INFO repro.eco" in captured.err
        finally:
            root.setLevel(before_level)
            for h in root.handlers[:]:
                root.removeHandler(h)
            for h in before_handlers:
                root.addHandler(h)


class TestServeAndWatch:
    def run_eco(self, eco_files, *extra):
        impl_path, spec_path = eco_files
        return main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--samples", "8", *extra])

    def test_serve_metrics_announces_endpoint(self, eco_files, capsys):
        assert self.run_eco(eco_files, "--serve-metrics") == 0
        captured = capsys.readouterr()
        assert "serving metrics on http://127.0.0.1:" in captured.err
        assert "verified: True" in captured.out

    def test_metrics_file_is_conformant_with_histograms(
            self, eco_files, tmp_path, capsys):
        from repro.obs.metrics import parse_prometheus_text

        metrics_path = str(tmp_path / "run.prom")
        assert self.run_eco(eco_files, "--metrics", metrics_path) == 0
        with open(metrics_path, encoding="utf-8") as fh:
            families = parse_prometheus_text(fh.read())  # strict
        hist = [n for n, f in families.items()
                if f["type"] == "histogram"]
        assert len(hist) >= 4
        assert "repro_sat_call_seconds" in hist
        # the per-phase exporter snapshot shares the payload
        assert "repro_phase_seconds_total" in families

    def test_watch_renders_a_recorded_run(self, eco_files, tmp_path,
                                          capsys):
        store = str(tmp_path / "runs")
        assert self.run_eco(eco_files, "--store", store) == 0
        capsys.readouterr()
        assert main(["watch", "last", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "outcome=ok" in out
        assert "phases:" in out
        assert "latency percentiles:" in out
        assert "repro_sat_call_seconds" in out

    def test_watch_live_endpoint_once(self, capsys):
        from repro.obs import MetricsServer, MetricsRegistry, Trace

        registry = MetricsRegistry()
        trace = Trace(name="demo", metrics=registry)
        with trace.span("eco.rectify"):
            with trace.span("sat.validate"):
                pass
        registry.sync_counters({"sat_validations": 4})
        with MetricsServer(registry, trace=trace) as server:
            assert main(["watch", "--url", server.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "run demo" in out
        assert "sat_validations" in out
        assert "repro_sat_call_seconds" in out

    def test_watch_dead_endpoint_is_an_error(self, capsys):
        assert main(["watch", "--url", "http://127.0.0.1:9",
                     "--once"]) == 3
        assert "cannot scrape" in capsys.readouterr().err

    def test_watch_unknown_ref_is_cli_error(self, tmp_path, capsys):
        store = str(tmp_path / "empty")
        assert main(["watch", "nope", "--store", store]) == 3
        assert "error" in capsys.readouterr().err


class TestTables:
    def test_single_case_table1(self, capsys):
        assert main(["tables", "--table", "1", "--cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" not in out


class TestErrors:
    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model m\n.gate nonsense\n")
        assert main(["stats", str(bad)]) == 3
        assert "error" in capsys.readouterr().err


class TestDiagnose:
    def test_diagnose_output(self, eco_files, capsys):
        impl_path, spec_path = eco_files
        assert main(["diagnose", "--impl", impl_path,
                     "--spec", spec_path, "--suggest"]) == 0
        out = capsys.readouterr().out
        assert "failing outputs" in out
        assert "suggested engine settings" in out


class TestPatchOut:
    def test_patch_netlist_written(self, eco_files, tmp_path, capsys):
        impl_path, spec_path = eco_files
        patch_path = str(tmp_path / "patch.blif")
        code = main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--patch-out", patch_path, "--samples", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rectification point" in out
        patch = read_blif(patch_path)
        assert patch.outputs  # at least one rectification point


class TestRunStore:
    def run_eco(self, eco_files, store, extra=()):
        impl_path, spec_path = eco_files
        return main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--samples", "8", "--store", store, *extra])

    def test_eco_publishes_by_default(self, eco_files, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert self.run_eco(eco_files, store) == 0
        out = capsys.readouterr().out
        assert "recorded run" in out
        assert os.path.exists(os.path.join(store, "records.jsonl"))
        assert os.path.exists(os.path.join(store, "index.json"))

    def test_no_store_skips_publishing(self, eco_files, tmp_path, capsys,
                                       monkeypatch):
        store = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUN_STORE", str(store))
        impl_path, spec_path = eco_files
        assert main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--samples", "8", "--no-store"]) == 0
        assert "recorded run" not in capsys.readouterr().out
        assert not store.exists()

    def test_runs_list_show_diff(self, eco_files, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert self.run_eco(eco_files, store) == 0
        assert self.run_eco(eco_files, store) == 0
        capsys.readouterr()

        assert main(["runs", "--store", store, "list"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3  # header + two runs
        assert "eco" in out and "ok" in out

        assert main(["runs", "--store", store, "show", "last"]) == 0
        out = capsys.readouterr().out
        assert "outcome  : ok" in out
        assert "eco.rectify" in out       # phase tree present
        assert "obs.sample" in out        # timeline rode along

        assert main(["runs", "--store", store, "diff",
                     "first", "last"]) == 0
        out = capsys.readouterr().out
        assert "wall_seconds" in out
        assert "counters.sat_conflicts_spent" in out

    def test_runs_show_json_round_trips(self, eco_files, tmp_path,
                                        capsys):
        import json
        store = str(tmp_path / "runs")
        assert self.run_eco(eco_files, store) == 0
        capsys.readouterr()
        assert main(["runs", "--store", store, "show", "last",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "eco"
        assert payload["tags"]["engine"] == "syseco"
        series = [s.get("bdd_nodes", 0) for s in payload["samples"]]
        assert series == sorted(series) and len(series) >= 2

    def test_regress_passes_on_identical_rerun(self, eco_files, tmp_path,
                                               capsys):
        store = str(tmp_path / "runs")
        assert self.run_eco(eco_files, store) == 0
        assert self.run_eco(eco_files, store) == 0
        capsys.readouterr()
        code = main(["runs", "--store", store, "regress",
                     "--baseline", "first"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_regress_fails_on_injected_slowdown(self, eco_files,
                                                tmp_path, capsys):
        """The fault-injection harness makes the current run slower by
        an armed clock jump; regress must exit nonzero."""
        from repro.eco import EcoConfig, SysEco
        from repro.obs import RunStore, Trace, record_from_result
        from repro.runtime import FaultInjector, SITE_CLOCK

        store_dir = str(tmp_path / "runs")
        assert self.run_eco(eco_files, store_dir) == 0

        impl = read_blif(eco_files[0])
        spec = read_blif(eco_files[1])
        config = EcoConfig(num_samples=8)
        injector = FaultInjector().arm(SITE_CLOCK, 2, payload=30.0)
        trace = Trace(name=impl.name)
        result = SysEco(config).rectify(impl, spec, injector=injector,
                                        trace=trace)
        RunStore(store_dir).publish(record_from_result(
            result, trace=trace, kind="eco", config=config,
            tags={"engine": "syseco"}))
        capsys.readouterr()

        code = main(["runs", "--store", store_dir, "regress",
                     "--baseline", "first"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION [wall_seconds]" in out

    def test_unknown_ref_is_cli_error(self, eco_files, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert self.run_eco(eco_files, store) == 0
        capsys.readouterr()
        assert main(["runs", "--store", store, "show", "nope"]) == 3
        assert "no run matches" in capsys.readouterr().err


class TestResume:
    """SIGINT handling, interrupted records, and ``--resume``."""

    def run_eco(self, eco_files, store, *extra):
        impl_path, spec_path = eco_files
        return main(["eco", "--impl", impl_path, "--spec", spec_path,
                     "--samples", "8", "--store", store, *extra])

    def interrupt_mid_search(self, monkeypatch):
        """Make the search die after the journal header is written —
        what ctrl-C during a long run looks like to the CLI."""
        from repro.eco.engine import SysEco

        def boom(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(SysEco, "_repair_outputs", boom)

    def test_sigint_persists_interrupted_record(self, eco_files, tmp_path,
                                                capsys, monkeypatch):
        from repro.obs import RunStore

        store = str(tmp_path / "runs")
        self.interrupt_mid_search(monkeypatch)
        assert self.run_eco(eco_files, store) == 130
        err = capsys.readouterr().err
        assert "interrupted (SIGINT)" in err
        assert "resume with: repro eco --resume" in err
        (record,) = RunStore(store).load_all()
        assert record.outcome == "interrupted"
        assert record.tags.get("resumable") is True

    def test_recover_lists_the_interrupted_run(self, eco_files, tmp_path,
                                               capsys, monkeypatch):
        from repro.obs import RunStore

        store = str(tmp_path / "runs")
        self.interrupt_mid_search(monkeypatch)
        assert self.run_eco(eco_files, store) == 130
        (record,) = RunStore(store).load_all()
        capsys.readouterr()
        assert main(["runs", "--store", store, "recover"]) == 0
        out = capsys.readouterr().out
        assert record.run_id in out
        assert f"repro eco --resume {record.run_id}" in out

    def test_resume_completes_the_interrupted_run(self, eco_files,
                                                  tmp_path, capsys,
                                                  monkeypatch):
        from repro.obs import RunStore

        store = str(tmp_path / "runs")
        with monkeypatch.context() as patched:
            self.interrupt_mid_search(patched)
            assert self.run_eco(eco_files, store) == 130
        (interrupted,) = RunStore(store).load_all()
        capsys.readouterr()

        assert self.run_eco(eco_files, store,
                            "--resume", interrupted.run_id) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        records = RunStore(store).load_all()
        final = records[-1]
        assert final.outcome == "ok"
        assert final.tags.get("resumed") is True
        assert final.tags.get("journal") == interrupted.run_id
        assert final.run_id != interrupted.run_id
        # the journal is finished: nothing is left to recover
        assert main(["runs", "--store", store, "recover"]) == 0
        assert "resumable: none" in capsys.readouterr().out

    def test_resume_unknown_run_is_an_error(self, eco_files, tmp_path,
                                            capsys):
        store = str(tmp_path / "runs")
        code = self.run_eco(eco_files, store, "--resume", "1999-nope")
        assert code != 0
        assert "no resumable journal" in capsys.readouterr().err

    def test_resume_rejected_for_baseline_engines(self, eco_files,
                                                  tmp_path, capsys):
        store = str(tmp_path / "runs")
        code = self.run_eco(eco_files, store, "--resume", "x",
                            "--engine", "conemap")
        assert code != 0
        assert "only supported by the syseco engine" \
            in capsys.readouterr().err
