"""Shared test helpers: random circuit construction and equivalence."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.simulate import evaluate_outputs


def make_random_circuit(seed: int, n_inputs: int = 5, n_gates: int = 25,
                        n_outputs: int = 3) -> Circuit:
    """Deterministic random DAG used across property tests."""
    rng = random.Random(seed)
    c = Circuit(f"rand{seed}")
    nets = list(c.add_inputs([f"x{i}" for i in range(n_inputs)]))
    types = [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND,
             GateType.NOR, GateType.NOT, GateType.MUX, GateType.XNOR,
             GateType.BUF]
    for _ in range(n_gates):
        gtype = rng.choice(types)
        if gtype in (GateType.NOT, GateType.BUF):
            fanins = [rng.choice(nets)]
        elif gtype is GateType.MUX:
            fanins = [rng.choice(nets) for _ in range(3)]
        else:
            fanins = [rng.choice(nets) for _ in range(rng.randint(2, 4))]
        nets.append(c.add(gtype, fanins))
    pool = nets[n_inputs:] or nets
    for o in range(n_outputs):
        c.set_output(f"y{o}", rng.choice(pool))
    return c


def exhaustive_equivalent(left: Circuit, right: Circuit,
                          max_inputs: int = 10) -> bool:
    """Truth-table equivalence over the union of the two input sets."""
    inputs = sorted(set(left.inputs) | set(right.inputs))
    assert len(inputs) <= max_inputs, "too many inputs for exhaustion"
    shared_ports = [p for p in left.outputs if p in right.outputs]
    assert shared_ports, "no shared outputs"
    for bits in itertools.product([False, True], repeat=len(inputs)):
        assignment = dict(zip(inputs, bits))
        lv = evaluate_outputs(left, {n: assignment[n] for n in left.inputs})
        rv = evaluate_outputs(right, {n: assignment[n] for n in right.inputs})
        for p in shared_ports:
            if lv[p] != rv[p]:
                return False
    return True


@pytest.fixture(autouse=True)
def _isolated_run_store(tmp_path, monkeypatch):
    """Point the persistent run store at a per-test directory so CLI
    and engine tests never write ``.repro/runs`` into the repo."""
    monkeypatch.setenv("REPRO_RUN_STORE", str(tmp_path / "runstore"))


@pytest.fixture
def tiny_adder() -> Circuit:
    """A one-bit full adder with outputs 'sum' and 'carry'."""
    c = Circuit("fa")
    a, b, cin = c.add_inputs(["a", "b", "cin"])
    axb = c.xor(a, b, name="axb")
    c.set_output("sum", c.xor(axb, cin, name="s"))
    g = c.and_(a, b, name="g")
    p = c.and_(axb, cin, name="p")
    c.set_output("carry", c.or_(g, p, name="cout"))
    return c


def pytest_sessionfinish(session, exitstatus):
    """Under ``REPRO_SYNC_DEBUG=1`` (the CI concurrency job runs the
    whole suite that way), fail the session if the lock-order detector
    recorded any inversion while the tests drove the runtime."""
    from repro.runtime.sync import sync_debug_enabled, sync_violations

    if not sync_debug_enabled():
        return
    violations = [v for v in sync_violations()
                  if not all(n.startswith("race.") for n in v.cycle)]
    if violations:
        lines = "\n\n".join(v.render() for v in violations)
        session.config.pluginmanager.get_plugin("terminalreporter") \
            .write_sep("=", "lock-order violations", red=True)
        print(lines)
        session.exitstatus = 3
