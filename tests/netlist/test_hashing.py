"""Unit and property tests for structural hashing."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.hashing import strash, structural_hash
from tests.conftest import exhaustive_equivalent, make_random_circuit


class TestStructuralHash:
    def test_identical_cones_share_keys(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.and_("a", "b", name="g2")
        c.set_output("o", "g1")
        keys = structural_hash(c)
        assert keys["g1"] == keys["g2"]

    def test_symmetric_fanin_order_ignored(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.and_("b", "a", name="g2")
        keys = structural_hash(c)
        assert keys["g1"] == keys["g2"]

    def test_mux_operand_order_matters(self):
        c = Circuit()
        c.add_inputs(["s", "x", "y"])
        c.mux("s", "x", "y", name="m1")
        c.mux("s", "y", "x", name="m2")
        c.set_output("o", "m1")
        keys = structural_hash(c)
        assert keys["m1"] != keys["m2"]

    def test_different_types_different_keys(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.or_("a", "b", name="g2")
        keys = structural_hash(c)
        assert keys["g1"] != keys["g2"]


class TestStrash:
    def test_merges_duplicates(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.and_("b", "a", name="g2")
        c.or_("g1", "g2", name="g3")
        c.set_output("o", "g3")
        s = strash(c)
        # g2 merged into g1; g3 becomes a single-operand OR -> collapses
        assert "g2" not in s.gates
        assert exhaustive_equivalent(c, s)

    def test_buffer_collapse(self):
        c = Circuit()
        c.add_input("a")
        c.buf("a", name="b1")
        c.set_output("o", "b1")
        s = strash(c)
        assert s.outputs["o"] == "a"
        assert not s.gates

    def test_preserves_function_on_random_circuits(self):
        for seed in range(12):
            c = make_random_circuit(seed, n_inputs=5, n_gates=20)
            s = strash(c)
            assert exhaustive_equivalent(c, s), seed
            assert s.num_gates <= c.num_gates

    def test_idempotent(self):
        c = make_random_circuit(4)
        once = strash(c)
        twice = strash(once)
        assert once.num_gates == twice.num_gates

    def test_keeps_io_names(self):
        c = make_random_circuit(2)
        s = strash(c)
        assert s.inputs == c.inputs
        assert set(s.outputs) == set(c.outputs)
