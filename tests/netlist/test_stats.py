"""Unit tests for circuit statistics."""

from repro.netlist.circuit import Circuit
from repro.netlist.stats import CircuitStats, circuit_stats


def test_counts_match_definition(tiny_adder):
    st = circuit_stats(tiny_adder)
    assert st.inputs == 3
    assert st.outputs == 2
    assert st.gates == 5
    assert st.nets == 8
    # sinks: every gate fanin plus every output port
    assert st.sinks == sum(
        len(g.fanins) for g in tiny_adder.gates.values()) + 2


def test_empty_logic():
    c = Circuit()
    c.add_input("a")
    c.set_output("o", "a")
    st = circuit_stats(c)
    assert st == CircuitStats(inputs=1, outputs=1, gates=0, nets=1, sinks=1)


def test_row_renders_all_fields():
    st = CircuitStats(1, 2, 3, 4, 5)
    row = st.row()
    for token in "1 2 3 4 5".split():
        assert token in row.split()
