"""Bit-identity of the numpy vector backend against the Python oracle.

Every vector kernel is a pure performance device: these tests pin the
level-batched :class:`VectorPlan` to the pure-Python
:class:`CompiledPlan` interpreter and to the legacy per-gate dictionary
walk (forced via ``order=``) on random circuits across batch widths,
output cones and signatures; a subprocess fixture blocks the numpy
import to prove the clean fallback; and one end-to-end check runs a
Table-1 case on both backends and compares per-output outcomes.
"""

import os
import random
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist import simd
from repro.netlist.simulate import (
    batch_mask,
    compiled_plan,
    random_patterns,
    signature,
    simulate_words,
)
from repro.netlist.traverse import topological_order
from tests.conftest import make_random_circuit

needs_numpy = pytest.mark.skipif(not simd.HAVE_NUMPY,
                                 reason="numpy not installed")


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = simd.get_backend()
    yield
    # restore directly: set_backend would re-apply any env override
    simd._selected = previous


def batched_words(circuit, width, seed):
    """One ``width``-word random batch per input."""
    rng = random.Random(seed)
    words = {n: 0 for n in circuit.inputs}
    for r in range(width):
        for name, word in random_patterns(circuit.inputs, rng).items():
            words[name] |= word << (64 * r)
    return words


class TestBackendSelection:
    def test_set_backend_returns_previous(self):
        assert simd.set_backend("python") == "auto"
        assert simd.set_backend("auto") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(NetlistError):
            simd.set_backend("cuda")

    def test_numpy_backend_requires_numpy(self, monkeypatch):
        monkeypatch.setattr(simd, "HAVE_NUMPY", False)
        with pytest.raises(NetlistError):
            simd.set_backend("numpy")
        # auto / python still select fine and fall back
        simd.set_backend("auto")
        assert not simd.use_vector_run(8, 10000)
        assert not simd.use_vector_screen(64)

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
        simd.set_backend("auto")
        assert simd.get_backend() == "python"
        # an explicit selection is never overridden
        monkeypatch.setenv("REPRO_SIM_BACKEND", "numpy")
        simd.set_backend("python")
        assert simd.get_backend() == "python"

    def test_backend_info_snapshot(self):
        info = simd.backend_info()
        assert info["selected"] in simd.BACKENDS
        assert info["numpy_available"] == simd.HAVE_NUMPY

    @needs_numpy
    def test_auto_thresholds(self):
        simd.set_backend("auto")
        assert simd.use_vector_run(simd.AUTO_MIN_WORDS,
                                   simd.AUTO_MIN_STEPS)
        assert not simd.use_vector_run(simd.AUTO_MIN_WORDS - 1,
                                       simd.AUTO_MIN_STEPS)
        assert not simd.use_vector_run(simd.AUTO_MIN_WORDS,
                                       simd.AUTO_MIN_STEPS - 1)
        simd.set_backend("numpy")
        assert simd.use_vector_run(1, 1)


@needs_numpy
class TestVectorParity:
    @given(seed=st.integers(min_value=0, max_value=5000),
           width=st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_run_matches_python_and_reference_walk(self, seed, width):
        c = make_random_circuit(seed)
        words = batched_words(c, width, seed + 1)
        mask = batch_mask(width)
        plan = compiled_plan(c)

        simd.set_backend("numpy")
        vector = plan.run(words, mask=mask)
        simd.set_backend("python")
        scalar = plan.run(words, mask=mask)
        assert vector == scalar

        # the legacy walk is single-word: check it lane by lane
        order = list(topological_order(c))
        for r in range(width):
            lane_words = {n: (w >> (64 * r)) & ((1 << 64) - 1)
                          for n, w in words.items()}
            reference = simulate_words(c, lane_words, order)
            for name, value in reference.items():
                lane = (vector[plan.index[name]] >> (64 * r)) \
                    & ((1 << 64) - 1)
                assert lane == value

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_cone_plan_parity(self, seed):
        c = make_random_circuit(seed)
        root = c.outputs[sorted(c.outputs)[0]]
        plan = compiled_plan(c, roots=[root])
        words = batched_words(c, 4, seed + 2)
        mask = batch_mask(4)
        simd.set_backend("numpy")
        vector = plan.run(words, mask=mask)
        simd.set_backend("python")
        assert vector == plan.run(words, mask=mask)

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=10, deadline=None)
    def test_signature_parity(self, seed):
        c = make_random_circuit(seed)
        simd.set_backend("numpy")
        vector = signature(c, rounds=8, seed=7)
        simd.set_backend("python")
        assert signature(c, rounds=8, seed=7) == vector

    def test_run_lanes_matches_run_ints(self):
        c = make_random_circuit(23)
        plan = compiled_plan(c)
        words = batched_words(c, 4, 9)
        simd.set_backend("numpy")
        lanes = plan.run_lanes(words, 4)
        assert lanes.shape == (len(plan.names), 4)
        ints = plan.vector_plan().run_ints(plan.names, words, 4)
        for row, value in zip(lanes, ints):
            assert simd.lanes_to_int(row) == value

    def test_lane_conversion_roundtrip(self):
        value = int.from_bytes(bytes(range(1, 33)), "little")
        lanes = simd.int_to_lanes(value, 4)
        assert simd.lanes_to_int(lanes) == value

    def test_missing_input_raises(self):
        c = make_random_circuit(24)
        simd.set_backend("numpy")
        with pytest.raises(NetlistError):
            compiled_plan(c).run({}, mask=batch_mask(2))


class TestNumpyAbsent:
    """A subprocess whose numpy import is blocked must fall back
    silently — same API, pure-Python results."""

    def _run_blocked(self, tmp_path, body):
        blocker = tmp_path / "blocker" / "numpy"
        blocker.mkdir(parents=True)
        (blocker / "__init__.py").write_text(
            "raise ImportError('numpy blocked for testing')\n")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        tests = os.path.join(os.path.dirname(__file__), "..", "..")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(blocker.parent), os.path.abspath(src),
             os.path.abspath(tests)])
        return subprocess.run(
            [sys.executable, "-c", textwrap.dedent(body)],
            env=env, capture_output=True, text=True, timeout=300)

    def test_fallback_without_numpy(self, tmp_path):
        proc = self._run_blocked(tmp_path, """
            import random
            from repro.errors import NetlistError
            from repro.netlist import simd
            from repro.netlist.simulate import (
                batch_mask, compiled_plan, random_patterns,
                simulate_words)
            from repro.netlist.traverse import topological_order
            from tests.conftest import make_random_circuit

            assert not simd.HAVE_NUMPY
            try:
                simd.set_backend("numpy")
            except NetlistError:
                pass
            else:
                raise AssertionError("numpy backend accepted")
            simd.set_backend("auto")
            assert not simd.use_vector_run(8, 10000)

            c = make_random_circuit(3)
            rng = random.Random(4)
            words = {n: 0 for n in c.inputs}
            for r in range(4):
                for n, w in random_patterns(c.inputs, rng).items():
                    words[n] |= w << (64 * r)
            plan = compiled_plan(c)
            got = plan.run(words, mask=batch_mask(4))
            order = list(topological_order(c))
            for r in range(4):
                lane_words = {n: (w >> (64 * r)) & ((1 << 64) - 1)
                              for n, w in words.items()}
                ref = simulate_words(c, lane_words, order)
                for name, value in ref.items():
                    lane = (got[plan.index[name]] >> (64 * r)) \
                        & ((1 << 64) - 1)
                    assert lane == value
            try:
                plan.run_lanes(words, 4)
            except NetlistError:
                pass
            else:
                raise AssertionError("run_lanes worked without numpy")
            print("FALLBACK-OK")
        """)
        assert proc.returncode == 0, proc.stderr
        assert "FALLBACK-OK" in proc.stdout

    def test_engine_runs_without_numpy(self, tmp_path):
        """Table-1 case 1 completes with numpy blocked, with the same
        per-output outcomes the numpy backend produces in this
        process (when numpy is installed)."""
        proc = self._run_blocked(tmp_path, """
            from repro.workloads.suite import build_case
            from repro.eco.engine import SysEco
            from repro.eco.config import EcoConfig

            case = build_case(1)
            result = SysEco(EcoConfig()).rectify(case.impl, case.spec)
            print("OUTCOMES", sorted(result.per_output.items()))
        """)
        assert proc.returncode == 0, proc.stderr
        line = [l for l in proc.stdout.splitlines()
                if l.startswith("OUTCOMES")][0]

        from repro.workloads.suite import build_case
        from repro.eco.engine import SysEco
        from repro.eco.config import EcoConfig

        case = build_case(1)
        backend = "numpy" if simd.HAVE_NUMPY else "python"
        result = SysEco(EcoConfig(sim_backend=backend)).rectify(
            case.impl, case.spec)
        assert line == f"OUTCOMES {sorted(result.per_output.items())}"


@needs_numpy
class TestEngineBackendIdentity:
    def test_table1_case_outcomes_identical(self):
        """Same Table-1 per-output patch outcomes on both backends."""
        from repro.workloads.suite import build_case
        from repro.eco.engine import SysEco
        from repro.eco.config import EcoConfig

        case = build_case(1)
        results = {}
        for backend in ("python", "numpy"):
            res = SysEco(EcoConfig(sim_backend=backend)).rectify(
                case.impl, case.spec)
            results[backend] = (sorted(res.per_output.items()),
                                sorted(res.verified_outputs))
        assert results["python"] == results["numpy"]
