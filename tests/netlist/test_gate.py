"""Unit tests for gate types and word-level evaluation."""

import pytest

from repro.errors import NetlistError
from repro.netlist.gate import (
    Gate,
    GateType,
    WORD_MASK,
    eval_gate,
    eval_gate_bool,
    SYMMETRIC_TYPES,
)


class TestArity:
    def test_constants_are_nullary(self):
        assert GateType.CONST0.arity_ok(0)
        assert GateType.CONST1.arity_ok(0)
        assert not GateType.CONST0.arity_ok(1)

    def test_unary_gates(self):
        for t in (GateType.NOT, GateType.BUF):
            assert t.arity_ok(1)
            assert not t.arity_ok(0)
            assert not t.arity_ok(2)

    def test_mux_is_ternary(self):
        assert GateType.MUX.arity_ok(3)
        assert not GateType.MUX.arity_ok(2)
        assert not GateType.MUX.arity_ok(4)

    @pytest.mark.parametrize("t", [GateType.AND, GateType.OR, GateType.XOR,
                                   GateType.NAND, GateType.NOR,
                                   GateType.XNOR])
    def test_nary_gates(self, t):
        assert t.arity_ok(1)
        assert t.arity_ok(2)
        assert t.arity_ok(7)
        assert not t.arity_ok(0)

    def test_gate_constructor_rejects_bad_arity(self):
        with pytest.raises(NetlistError):
            Gate("g", GateType.NOT, ["a", "b"])
        with pytest.raises(NetlistError):
            Gate("g", GateType.MUX, ["a", "b"])

    def test_is_constant(self):
        assert GateType.CONST0.is_constant
        assert GateType.CONST1.is_constant
        assert not GateType.AND.is_constant


class TestEvalGate:
    def test_constants(self):
        assert eval_gate(GateType.CONST0, []) == 0
        assert eval_gate(GateType.CONST1, []) == WORD_MASK

    def test_buf_and_not(self):
        w = 0b1010
        assert eval_gate(GateType.BUF, [w]) == w
        assert eval_gate(GateType.NOT, [w]) == (~w) & WORD_MASK

    @pytest.mark.parametrize("a,b", [(0b0011, 0b0101)])
    def test_two_input_truth_tables(self, a, b):
        # bits 0..3 enumerate the four input combinations
        assert eval_gate(GateType.AND, [a, b]) & 0xF == 0b0001
        assert eval_gate(GateType.OR, [a, b]) & 0xF == 0b0111
        assert eval_gate(GateType.XOR, [a, b]) & 0xF == 0b0110
        assert eval_gate(GateType.NAND, [a, b]) & 0xF == 0b1110
        assert eval_gate(GateType.NOR, [a, b]) & 0xF == 0b1000
        assert eval_gate(GateType.XNOR, [a, b]) & 0xF == 0b1001

    def test_mux_truth_table(self):
        s, d0, d1 = 0b1100, 0b1010, 0b0110
        # out = s ? d1 : d0
        assert eval_gate(GateType.MUX, [s, d0, d1]) & 0xF == 0b0110

    def test_nary_and(self):
        assert eval_gate(GateType.AND, [0b111, 0b110, 0b101]) == 0b100

    def test_nary_xor_parity(self):
        assert eval_gate(GateType.XOR, [0b1, 0b1, 0b1]) & 1 == 1
        assert eval_gate(GateType.XOR, [0b1, 0b1, 0b0]) & 1 == 0

    def test_results_fit_in_word(self):
        for t in GateType:
            n = 0 if t.is_constant else (3 if t is GateType.MUX else
                                         1 if t in (GateType.NOT, GateType.BUF)
                                         else 2)
            out = eval_gate(t, [WORD_MASK] * n)
            assert 0 <= out <= WORD_MASK

    def test_eval_gate_bool(self):
        assert eval_gate_bool(GateType.AND, [True, True]) is True
        assert eval_gate_bool(GateType.AND, [True, False]) is False
        assert eval_gate_bool(GateType.NOT, [False]) is True
        assert eval_gate_bool(GateType.MUX, [True, False, True]) is True


class TestGateObject:
    def test_copy_is_independent(self):
        g = Gate("g", GateType.AND, ["a", "b"])
        h = g.copy()
        h.fanins[0] = "c"
        assert g.fanins == ["a", "b"]

    def test_equality_and_hash(self):
        g1 = Gate("g", GateType.AND, ["a", "b"])
        g2 = Gate("g", GateType.AND, ["a", "b"])
        g3 = Gate("g", GateType.OR, ["a", "b"])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3

    def test_repr_mentions_name_and_type(self):
        g = Gate("mygate", GateType.NOR, ["a"])
        assert "mygate" in repr(g)
        assert "nor" in repr(g)

    def test_symmetric_types_exclude_mux(self):
        assert GateType.MUX not in SYMMETRIC_TYPES
        assert GateType.AND in SYMMETRIC_TYPES
        assert GateType.XNOR in SYMMETRIC_TYPES
