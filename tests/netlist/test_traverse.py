"""Unit tests for traversal utilities."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.traverse import (
    cone_of,
    dependent_outputs,
    input_support,
    levelize,
    output_support,
    support_masks,
    topological_order,
    transitive_fanin,
    transitive_fanout,
)
from tests.conftest import make_random_circuit


@pytest.fixture
def diamond() -> Circuit:
    # a -> g1 -> g3 -> o ; a -> g2 -> g3
    c = Circuit("diamond")
    c.add_inputs(["a", "b"])
    c.not_("a", name="g1")
    c.and_("a", "b", name="g2")
    c.or_("g1", "g2", name="g3")
    c.set_output("o", "g3")
    c.set_output("p", "g2")
    return c


class TestTopologicalOrder:
    def test_fanins_precede_fanouts(self, diamond):
        order = topological_order(diamond)
        pos = {n: i for i, n in enumerate(order)}
        for g in diamond.gates.values():
            for f in g.fanins:
                if f in pos:
                    assert pos[f] < pos[g.name]

    def test_random_circuits_property(self):
        for seed in range(10):
            c = make_random_circuit(seed)
            order = topological_order(c)
            assert sorted(order) == sorted(c.gates)
            pos = {n: i for i, n in enumerate(order)}
            for g in c.gates.values():
                for f in g.fanins:
                    if f in pos:
                        assert pos[f] < pos[g.name]

    def test_roots_restrict_scope(self, diamond):
        order = topological_order(diamond, roots=["g2"])
        assert order == ["g2"]

    def test_cycle_detection(self):
        c = Circuit()
        c.add_input("a")
        c.and_("a", "a", name="g1")
        c.or_("g1", "a", name="g2")
        # manufacture a cycle g1 <- g2
        c.gates["g1"].fanins[1] = "g2"
        with pytest.raises(NetlistError):
            topological_order(c)

    def test_empty_circuit(self):
        c = Circuit()
        c.add_input("a")
        assert topological_order(c) == []


class TestCones:
    def test_transitive_fanin(self, diamond):
        tfi = transitive_fanin(diamond, ["g3"])
        assert tfi == {"g3", "g1", "g2", "a", "b"}

    def test_transitive_fanin_excluding_inputs(self, diamond):
        tfi = transitive_fanin(diamond, ["g1"], include_inputs=False)
        assert tfi == {"g1"}

    def test_transitive_fanout(self, diamond):
        tfo = transitive_fanout(diamond, ["g1"])
        assert tfo == {"g1", "g3"}
        assert transitive_fanout(diamond, ["a"]) == {"a", "g1", "g2", "g3"}

    def test_input_support(self, diamond):
        assert input_support(diamond, "g1") == {"a"}
        assert input_support(diamond, "g3") == {"a", "b"}

    def test_output_support(self, diamond):
        assert output_support(diamond, "p") == {"a", "b"}

    def test_dependent_outputs(self, diamond):
        assert sorted(dependent_outputs(diamond, ["g1"])) == ["o"]
        assert sorted(dependent_outputs(diamond, ["g2"])) == ["o", "p"]

    def test_support_masks_agree_with_input_support(self):
        for seed in range(6):
            c = make_random_circuit(seed)
            idx = {n: i for i, n in enumerate(c.inputs)}
            masks = support_masks(c)
            for net in c.nets():
                expect = input_support(c, net)
                got = {n for n in c.inputs if masks[net] >> idx[n] & 1}
                assert got == expect, net

    def test_support_masks_shared_numbering(self, diamond):
        idx = {"b": 0, "a": 1}
        masks = support_masks(diamond, idx)
        assert masks["g1"] == 0b10
        assert masks["g3"] == 0b11


class TestLevelize:
    def test_levels(self, diamond):
        lv = levelize(diamond)
        assert lv["a"] == 0
        assert lv["g1"] == 1
        assert lv["g2"] == 1
        assert lv["g3"] == 2

    def test_constants_at_level_zero(self):
        c = Circuit()
        c.add_input("a")
        c.const1(name="k")
        c.set_output("o", c.and_("a", "k"))
        assert levelize(c)["k"] == 0


class TestConeOf:
    def test_cone_keeps_names_and_function(self, diamond):
        cone = cone_of(diamond, ["p"])
        assert set(cone.gates) == {"g2"}
        assert cone.inputs == ["a", "b"]
        assert cone.outputs == {"p": "g2"}

    def test_cone_of_missing_port(self, diamond):
        with pytest.raises(NetlistError):
            cone_of(diamond, ["nope"])

    def test_cone_multi_port(self, diamond):
        cone = cone_of(diamond, ["o", "p"])
        assert set(cone.gates) == {"g1", "g2", "g3"}
