"""Unit and property tests for BLIF and Verilog I/O."""

import pytest

from repro.errors import ParseError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.io_blif import dumps_blif, loads_blif, read_blif, \
    write_blif
from repro.netlist.io_verilog import dumps_verilog, write_verilog
from repro.netlist.validate import is_well_formed
from tests.conftest import exhaustive_equivalent, make_random_circuit


class TestBlifRoundTrip:
    def test_small_circuit(self, tiny_adder):
        text = dumps_blif(tiny_adder)
        back = loads_blif(text)
        assert is_well_formed(back)
        assert exhaustive_equivalent(tiny_adder, back)

    def test_random_circuits(self):
        for seed in range(10):
            c = make_random_circuit(seed, n_inputs=5, n_gates=15)
            back = loads_blif(dumps_blif(c))
            assert is_well_formed(back), seed
            assert exhaustive_equivalent(c, back), seed

    def test_every_gate_type_round_trips(self):
        c = Circuit("types")
        c.add_inputs(["a", "b", "c"])
        c.set_output("o_and", c.and_("a", "b", "c"))
        c.set_output("o_or", c.or_("a", "b"))
        c.set_output("o_nand", c.nand("a", "b"))
        c.set_output("o_nor", c.nor("a", "b", "c"))
        c.set_output("o_xor", c.xor("a", "b", "c"))
        c.set_output("o_xnor", c.xnor("a", "b"))
        c.set_output("o_not", c.not_("a"))
        c.set_output("o_buf", c.buf("b"))
        c.set_output("o_mux", c.mux("a", "b", "c"))
        c.set_output("o_c0", c.const0())
        c.set_output("o_c1", c.const1())
        back = loads_blif(dumps_blif(c))
        assert exhaustive_equivalent(c, back)

    def test_file_round_trip(self, tmp_path, tiny_adder):
        path = str(tmp_path / "fa.blif")
        write_blif(tiny_adder, path)
        back = read_blif(path)
        assert exhaustive_equivalent(tiny_adder, back)

    def test_port_net_collision_round_trips(self):
        # port 'o' observes 'g' while an unrelated net 'o' exists
        # (NL004) — the engine's output-port fallback leaves exactly
        # this shape behind; the writer must mangle, not double-define
        c = Circuit("collide")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="o")
        c.or_("a", "b", name="g")
        c.not_("o", name="keep")        # the colliding net stays live
        c.set_output("o", "g")
        c.set_output("k", "keep")
        back = loads_blif(dumps_blif(c))
        assert is_well_formed(back)
        assert exhaustive_equivalent(c, back)

    def test_input_port_collision_round_trips(self):
        # the colliding net is a primary input: 'a' feeds logic while
        # output port 'a' observes a different net
        c = Circuit("collide_in")
        c.add_inputs(["a", "b"])
        c.or_("a", "b", name="g")
        c.set_output("a", "g")
        back = loads_blif(dumps_blif(c))
        assert is_well_formed(back)


class TestBlifParsing:
    def test_model_name(self):
        c = loads_blif(".model demo\n.inputs a\n.outputs a\n.end\n")
        assert c.name == "demo"

    def test_line_continuation(self):
        text = (".model m\n.inputs a \\\nb\n.outputs o\n"
                ".names a b o\n11 1\n.end\n")
        c = loads_blif(text)
        assert c.inputs == ["a", "b"]

    def test_comments_stripped(self):
        text = ("# header\n.model m\n.inputs a # trailing\n.outputs o\n"
                ".names a o\n1 1\n.end\n")
        c = loads_blif(text)
        assert c.inputs == ["a"]

    def test_offset_cover(self):
        text = (".model m\n.inputs a b\n.outputs o\n"
                ".names a b o\n11 0\n.end\n")
        c = loads_blif(text)
        # off-set row: o = ~(a & b)
        from repro.netlist.simulate import evaluate_outputs
        assert evaluate_outputs(c, {"a": True, "b": True})["o"] is False
        assert evaluate_outputs(c, {"a": False, "b": True})["o"] is True

    def test_empty_cover_is_const0(self):
        text = ".model m\n.inputs a\n.outputs o\n.names o\n.end\n"
        c = loads_blif(text)
        from repro.netlist.simulate import evaluate_outputs
        assert evaluate_outputs(c, {"a": True})["o"] is False

    def test_out_of_order_blocks(self):
        text = (".model m\n.inputs a\n.outputs o\n"
                ".names t o\n1 1\n.names a t\n0 1\n.end\n")
        c = loads_blif(text)
        from repro.netlist.simulate import evaluate_outputs
        assert evaluate_outputs(c, {"a": False})["o"] is True

    @pytest.mark.parametrize("text,fragment", [
        (".model m\n.inputs a\n.outputs o\n.names a o\n2 1\n.end\n",
         "characters"),
        (".model m\n.inputs a\n.outputs o\n.names a o\n11 1\n.end\n",
         "width"),
        (".model m\n.inputs a\n.outputs o\n1 1\n.end\n", "outside"),
        (".model m\n.inputs a\n.outputs o\n.end\n", "undefined output"),
        (".model m\n.inputs a\n.outputs o\n.gate x\n.end\n", "unsupported"),
        (".model m\n.inputs a\n.outputs o\n.names a o\n1 1\n"
         ".names a o\n0 1\n.end\n", "twice"),
    ])
    def test_parse_errors(self, text, fragment):
        with pytest.raises(ParseError) as err:
            loads_blif(text)
        assert fragment in str(err.value)

    def test_cyclic_definition_rejected(self):
        text = (".model m\n.inputs a\n.outputs o\n"
                ".names o t\n1 1\n.names t o\n1 1\n.end\n")
        with pytest.raises(ParseError):
            loads_blif(text)


class TestVerilogWriter:
    def test_contains_module_and_ports(self, tiny_adder):
        text = dumps_verilog(tiny_adder)
        assert text.startswith("module fa (")
        assert "input a;" in text
        assert "output sum;" in text
        assert "endmodule" in text

    def test_primitives_emitted(self, tiny_adder):
        text = dumps_verilog(tiny_adder)
        assert "xor" in text
        assert "and" in text
        assert "or" in text

    def test_mux_and_constants_as_assigns(self):
        c = Circuit("m")
        c.add_inputs(["s", "x", "y"])
        c.set_output("o", c.mux("s", "x", "y"))
        c.set_output("k", c.const1())
        text = dumps_verilog(c)
        assert "? " in text
        assert "1'b1" in text

    def test_escaped_identifiers(self):
        c = Circuit("esc")
        c.add_input("a$b%c")
        c.set_output("o", c.not_("a$b%c"))
        text = dumps_verilog(c)
        assert "\\a$b%c " in text

    def test_write_to_file(self, tmp_path, tiny_adder):
        path = str(tmp_path / "fa.v")
        write_verilog(tiny_adder, path)
        with open(path) as fh:
            assert "module" in fh.read()


class TestVerilogReader:
    def test_round_trip_random_circuits(self):
        from repro.netlist.io_verilog import loads_verilog
        for seed in range(8):
            c = make_random_circuit(seed, n_inputs=5, n_gates=15)
            back = loads_verilog(dumps_verilog(c))
            assert is_well_formed(back), seed
            assert exhaustive_equivalent(c, back), seed

    def test_round_trip_all_gate_types(self):
        from repro.netlist.io_verilog import loads_verilog
        c = Circuit("types")
        c.add_inputs(["a", "b", "c"])
        c.set_output("o_and", c.and_("a", "b", "c"))
        c.set_output("o_nor", c.nor("a", "b"))
        c.set_output("o_xnor", c.xnor("a", "b"))
        c.set_output("o_not", c.not_("a"))
        c.set_output("o_mux", c.mux("a", "b", "c"))
        c.set_output("o_c0", c.const0())
        c.set_output("o_c1", c.const1())
        back = loads_verilog(dumps_verilog(c))
        assert exhaustive_equivalent(c, back)

    def test_comments_ignored(self):
        from repro.netlist.io_verilog import loads_verilog
        text = """
        // line comment
        module m (a, o);
          input a; /* block
          comment */ output o;
          assign o = ~a;  // tail
        endmodule
        """
        c = loads_verilog(text)
        from repro.netlist.simulate import evaluate_outputs
        assert evaluate_outputs(c, {"a": False})["o"] is True

    def test_out_of_order_statements(self):
        from repro.netlist.io_verilog import loads_verilog
        text = ("module m (a, o);\ninput a;\noutput o;\nwire t;\n"
                "assign o = t;\nnot g0 (t, a);\nendmodule\n")
        c = loads_verilog(text)
        from repro.netlist.simulate import evaluate_outputs
        assert evaluate_outputs(c, {"a": True})["o"] is False

    def test_assign_binary_operators(self):
        from repro.netlist.io_verilog import loads_verilog
        text = ("module m (a, b, x, y, z);\ninput a; input b;\n"
                "output x; output y; output z;\n"
                "assign x = a & b;\nassign y = a | b;\n"
                "assign z = a ^ b;\nendmodule\n")
        c = loads_verilog(text)
        from repro.netlist.simulate import evaluate_outputs
        out = evaluate_outputs(c, {"a": True, "b": False})
        assert out == {"x": False, "y": True, "z": True}

    def test_escaped_identifier_round_trip(self):
        from repro.netlist.io_verilog import loads_verilog
        c = Circuit("esc")
        c.add_input("a$b%c")
        c.set_output("o", c.not_("a$b%c"))
        back = loads_verilog(dumps_verilog(c))
        assert "a$b%c" in back.inputs

    @pytest.mark.parametrize("text,fragment", [
        ("module m (a);\ninput a;\nbogus x;\nendmodule", "unsupported"),
        ("module m (o);\noutput o;\nendmodule", "undriven"),
        ("module m (a, o);\ninput a;\noutput o;\n"
         "assign o = a + a;\nendmodule", "unexpected"),
        ("module m (a, o);\ninput a;\noutput o;\nwire t;\n"
         "assign o = t;\nassign t = o;\nendmodule", "cycle"),
        ("module m (a, o);\ninput a;\noutput o;\n"
         "assign o = a;\nassign o = a;\nendmodule", "twice"),
    ])
    def test_reader_errors(self, text, fragment):
        from repro.errors import ParseError
        from repro.netlist.io_verilog import loads_verilog
        with pytest.raises(ParseError) as err:
            loads_verilog(text)
        assert fragment in str(err.value)

    def test_read_from_file(self, tmp_path, tiny_adder):
        from repro.netlist.io_verilog import read_verilog
        path = str(tmp_path / "fa.v")
        write_verilog(tiny_adder, path)
        back = read_verilog(path)
        assert exhaustive_equivalent(tiny_adder, back)


class TestAiger:
    def test_round_trip_random_circuits(self):
        from repro.netlist.io_aiger import dumps_aiger, loads_aiger
        for seed in range(8):
            c = make_random_circuit(seed, n_inputs=5, n_gates=15)
            back = loads_aiger(dumps_aiger(c))
            assert is_well_formed(back), seed
            assert exhaustive_equivalent(c, back), seed

    def test_round_trip_all_gate_types(self):
        from repro.netlist.io_aiger import dumps_aiger, loads_aiger
        c = Circuit("types")
        c.add_inputs(["a", "b", "c"])
        c.set_output("o_and", c.and_("a", "b", "c"))
        c.set_output("o_nor", c.nor("a", "b"))
        c.set_output("o_xnor", c.xnor("a", "b"))
        c.set_output("o_mux", c.mux("a", "b", "c"))
        c.set_output("o_c0", c.const0())
        c.set_output("o_c1", c.const1())
        back = loads_aiger(dumps_aiger(c))
        assert exhaustive_equivalent(c, back)

    def test_port_names_preserved(self, tiny_adder):
        from repro.netlist.io_aiger import dumps_aiger, loads_aiger
        back = loads_aiger(dumps_aiger(tiny_adder))
        assert back.inputs == tiny_adder.inputs
        assert set(back.outputs) == set(tiny_adder.outputs)

    def test_header_counts_consistent(self, tiny_adder):
        from repro.netlist.io_aiger import dumps_aiger
        header = dumps_aiger(tiny_adder).splitlines()[0].split()
        m, i, l, o, a = (int(x) for x in header[1:])
        assert i == 3 and l == 0 and o == 2
        assert m >= i + a

    def test_structural_sharing_in_writer(self):
        from repro.netlist.io_aiger import dumps_aiger
        c = Circuit("share")
        c.add_inputs(["a", "b"])
        c.set_output("o1", c.and_("a", "b"))
        c.set_output("o2", c.and_("b", "a"))
        header = dumps_aiger(c).splitlines()[0].split()
        assert int(header[5]) == 1  # one shared AND row

    def test_missing_symbols_get_defaults(self):
        from repro.netlist.io_aiger import loads_aiger
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"
        c = loads_aiger(text)
        assert c.inputs == ["x0", "x1"]
        assert list(c.outputs) == ["y0"]

    def test_complemented_output(self):
        from repro.netlist.io_aiger import loads_aiger
        from repro.netlist.simulate import evaluate_outputs
        text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n"
        c = loads_aiger(text)
        out = evaluate_outputs(c, {"x0": True, "x1": True})
        assert out["y0"] is False  # ~(x0 & x1)

    @pytest.mark.parametrize("text,fragment", [
        ("nope\n", "header"),
        ("aag 1 x 0 0 0\n", "malformed"),
        ("aag 3 1 1 1 0\n2\n4\n2\n", "latches"),
        ("aag 2 1 0 1 1\n2\n4\n", "truncated"),
        ("aag 2 1 0 0 1\n2\n5 2 2\n", "even"),
        ("aag 1 1 0 0 0\n3\n", "even"),
    ])
    def test_aiger_errors(self, text, fragment):
        from repro.errors import ParseError
        from repro.netlist.io_aiger import loads_aiger
        with pytest.raises(ParseError) as err:
            loads_aiger(text)
        assert fragment in str(err.value)
