"""Tests for the word-level construction helpers."""

import itertools

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import evaluate_outputs
from repro.netlist.wordlevel import Word, constant_word, input_word


def word_value(circuit, prefix, width, inputs):
    out = evaluate_outputs(circuit, inputs)
    return sum(out[f"{prefix}{k}"] << k for k in range(width))


def input_bits(prefix, width, value):
    return {f"{prefix}{k}": bool(value >> k & 1) for k in range(width)}


class TestBitwiseOperators:
    @pytest.mark.parametrize("op,fn", [
        (lambda a, b: a & b, lambda x, y: x & y),
        (lambda a, b: a | b, lambda x, y: x | y),
        (lambda a, b: a ^ b, lambda x, y: x ^ y),
    ])
    def test_binary_ops(self, op, fn):
        c = Circuit("w")
        a = input_word(c, "a", 3)
        b = input_word(c, "b", 3)
        op(a, b).outputs("r")
        for x, y in itertools.product(range(8), repeat=2):
            ins = {**input_bits("a", 3, x), **input_bits("b", 3, y)}
            assert word_value(c, "r", 3, ins) == fn(x, y)

    def test_invert(self):
        c = Circuit("w")
        a = input_word(c, "a", 3)
        (~a).outputs("r")
        ins = input_bits("a", 3, 0b101)
        assert word_value(c, "r", 3, ins) == 0b010

    def test_broadcast_single_net(self):
        c = Circuit("w")
        a = input_word(c, "a", 3)
        en = c.add_input("en")
        (a & en).outputs("r")
        ins = {**input_bits("a", 3, 0b111), "en": False}
        assert word_value(c, "r", 3, ins) == 0

    def test_width_mismatch_rejected(self):
        c = Circuit("w")
        a = input_word(c, "a", 3)
        b = input_word(c, "b", 2)
        with pytest.raises(NetlistError):
            a & b


class TestArithmetic:
    def test_addition(self):
        c = Circuit("w")
        a = input_word(c, "a", 4)
        b = input_word(c, "b", 4)
        total, carry = a.add(b)
        total.outputs("s")
        c.set_output("cout", carry)
        for x, y in itertools.product(range(16), repeat=2):
            ins = {**input_bits("a", 4, x), **input_bits("b", 4, y)}
            out = evaluate_outputs(c, ins)
            got = word_value(c, "s", 4, ins) + (out["cout"] << 4)
            assert got == x + y

    def test_addition_with_carry_in(self):
        c = Circuit("w")
        a = input_word(c, "a", 2)
        cin = c.add_input("cin")
        total, _ = a.add(constant_word(c, 0, 2), carry_in=cin)
        total.outputs("s")
        ins = {**input_bits("a", 2, 1), "cin": True}
        assert word_value(c, "s", 2, ins) == 2

    def test_constant_word(self):
        c = Circuit("w")
        c.add_input("dummy")
        constant_word(c, 0b10, 2).outputs("k")
        assert word_value(c, "k", 2, {"dummy": False}) == 0b10


class TestPredicatesAndMux:
    def test_equals(self):
        c = Circuit("w")
        a = input_word(c, "a", 3)
        b = input_word(c, "b", 3)
        c.set_output("eq", a.equals(b))
        for x, y in itertools.product(range(8), repeat=2):
            ins = {**input_bits("a", 3, x), **input_bits("b", 3, y)}
            assert evaluate_outputs(c, ins)["eq"] == (x == y)

    def test_mux(self):
        c = Circuit("w")
        a = input_word(c, "a", 3)
        b = input_word(c, "b", 3)
        s = c.add_input("s")
        a.mux(s, b).outputs("r")
        ins = {**input_bits("a", 3, 5), **input_bits("b", 3, 2),
               "s": True}
        assert word_value(c, "r", 3, ins) == 2
        ins["s"] = False
        assert word_value(c, "r", 3, ins) == 5

    def test_reductions(self):
        c = Circuit("w")
        a = input_word(c, "a", 4)
        c.set_output("any", a.any())
        c.set_output("par", a.parity())
        for x in range(16):
            out = evaluate_outputs(c, input_bits("a", 4, x))
            assert out["any"] == (x != 0)
            assert out["par"] == (bin(x).count("1") % 2 == 1)


class TestWordObject:
    def test_slicing(self):
        c = Circuit("w")
        a = input_word(c, "a", 4)
        low = a[:2]
        assert isinstance(low, Word)
        assert len(low) == 2
        assert a[3] == "a3"

    def test_bits_must_exist(self):
        c = Circuit("w")
        c.add_input("a")
        with pytest.raises(NetlistError):
            Word(c, ["a", "ghost"])
