"""Unit tests for the Circuit data model and Pin."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.gate import GateType


@pytest.fixture
def small() -> Circuit:
    c = Circuit("small")
    c.add_inputs(["a", "b"])
    c.and_("a", "b", name="g1")
    c.or_("g1", "a", name="g2")
    c.set_output("o", "g2")
    return c


class TestConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_input("a")

    def test_gate_name_collision_with_input(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_gate("a", GateType.NOT, ["a"])

    def test_gate_fanin_must_exist(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.and_("a", "ghost")

    def test_output_net_must_exist(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.set_output("o", "ghost")

    def test_output_can_observe_input(self):
        c = Circuit()
        c.add_input("a")
        c.set_output("o", "a")
        assert c.outputs["o"] == "a"

    def test_fresh_names_avoid_collisions(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("n0", GateType.NOT, ["a"])
        auto = c.not_("a")
        assert auto != "n0"
        assert auto in c.gates

    def test_builder_helpers_cover_all_types(self, small):
        c = small
        assert c.gates[c.xor("a", "b")].gtype is GateType.XOR
        assert c.gates[c.nand("a", "b")].gtype is GateType.NAND
        assert c.gates[c.nor("a", "b")].gtype is GateType.NOR
        assert c.gates[c.xnor("a", "b")].gtype is GateType.XNOR
        assert c.gates[c.mux("a", "b", "g1")].gtype is GateType.MUX
        assert c.gates[c.buf("a")].gtype is GateType.BUF
        assert c.gates[c.const0()].gtype is GateType.CONST0
        assert c.gates[c.const1()].gtype is GateType.CONST1


class TestQueries:
    def test_counts(self, small):
        assert small.num_gates == 2
        assert small.num_nets == 4  # 2 inputs + 2 gates
        # sinks: g1 has 2 fanins, g2 has 2 fanins, output port 1
        assert small.num_sinks == 5

    def test_sinks_of_input(self, small):
        sinks = small.sinks("a")
        assert Pin.gate("g1", 0) in sinks
        assert Pin.gate("g2", 1) in sinks
        assert len(sinks) == 2

    def test_sinks_includes_output_port(self, small):
        assert Pin.output("o") in small.sinks("g2")

    def test_sink_map_matches_sinks(self, small):
        sm = small.sink_map()
        for net in small.nets():
            assert sorted(sm[net]) == sorted(small.sinks(net))

    def test_all_pins_count(self, small):
        assert len(list(small.all_pins())) == small.num_sinks

    def test_pin_driver(self, small):
        assert small.pin_driver(Pin.gate("g2", 0)) == "g1"
        assert small.pin_driver(Pin.output("o")) == "g2"

    def test_pin_driver_errors(self, small):
        with pytest.raises(NetlistError):
            small.pin_driver(Pin.gate("ghost", 0))
        with pytest.raises(NetlistError):
            small.pin_driver(Pin.gate("g1", 9))
        with pytest.raises(NetlistError):
            small.pin_driver(Pin.output("ghost"))

    def test_nets_iterates_inputs_then_gates(self, small):
        nets = list(small.nets())
        assert nets[:2] == ["a", "b"]
        assert set(nets[2:]) == {"g1", "g2"}


class TestEdits:
    def test_rewire_gate_pin(self, small):
        old = small.rewire_pin(Pin.gate("g2", 0), "b")
        assert old == "g1"
        assert small.gates["g2"].fanins[0] == "b"

    def test_rewire_output_port(self, small):
        old = small.rewire_pin(Pin.output("o"), "g1")
        assert old == "g2"
        assert small.outputs["o"] == "g1"

    def test_rewire_to_missing_net(self, small):
        with pytest.raises(NetlistError):
            small.rewire_pin(Pin.output("o"), "ghost")

    def test_replace_net_redirects_all_sinks(self, small):
        count = small.replace_net("a", "b")
        assert count == 2
        assert small.gates["g1"].fanins == ["b", "b"]
        assert small.gates["g2"].fanins[1] == "b"

    def test_remove_gate_requires_no_sinks(self, small):
        with pytest.raises(NetlistError):
            small.remove_gate("g1")
        small.rewire_pin(Pin.gate("g2", 0), "a")
        small.remove_gate("g1")
        assert "g1" not in small.gates

    def test_remove_missing_gate(self, small):
        with pytest.raises(NetlistError):
            small.remove_gate("ghost")

    def test_copy_is_deep(self, small):
        dup = small.copy()
        dup.rewire_pin(Pin.gate("g2", 0), "a")
        dup.add_input("z")
        assert small.gates["g2"].fanins[0] == "g1"
        assert "z" not in small.inputs


class TestPin:
    def test_equality_and_hash(self):
        assert Pin.gate("g", 1) == Pin.gate("g", 1)
        assert Pin.gate("g", 1) != Pin.gate("g", 2)
        assert Pin.output("o") != Pin.gate("o", 0)
        assert len({Pin.gate("g", 1), Pin.gate("g", 1)}) == 1

    def test_bad_kind(self):
        with pytest.raises(NetlistError):
            Pin("bogus", "g")

    def test_ordering_is_total(self):
        pins = [Pin.output("z"), Pin.gate("a", 1), Pin.gate("a", 0)]
        assert sorted(pins) == [Pin.gate("a", 0), Pin.gate("a", 1),
                                Pin.output("z")]

    def test_repr(self):
        assert "output" in repr(Pin.output("o"))
        assert "gate" in repr(Pin.gate("g", 0))
