"""Unit and property tests for bit-parallel simulation."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import WORD_BITS, WORD_MASK
from repro.netlist.simulate import (
    evaluate_outputs,
    patterns_to_words,
    random_patterns,
    signature,
    simulate,
    simulate_words,
    words_to_patterns,
)
from tests.conftest import make_random_circuit


class TestSimulate:
    def test_single_assignment(self, tiny_adder):
        out = evaluate_outputs(tiny_adder,
                               {"a": True, "b": True, "cin": False})
        assert out == {"sum": False, "carry": True}

    def test_full_adder_truth_table(self, tiny_adder):
        for a, b, cin in itertools.product([0, 1], repeat=3):
            out = evaluate_outputs(
                tiny_adder, {"a": bool(a), "b": bool(b), "cin": bool(cin)})
            total = a + b + cin
            assert out["sum"] == bool(total & 1)
            assert out["carry"] == bool(total >> 1)

    def test_missing_input_raises(self, tiny_adder):
        with pytest.raises(NetlistError):
            simulate(tiny_adder, {"a": True})

    def test_words_consistent_with_single(self):
        c = make_random_circuit(3)
        rng = random.Random(5)
        words = random_patterns(c.inputs, rng)
        values = simulate_words(c, words)
        for bit in (0, 17, 63):
            single = simulate(
                c, {n: bool(words[n] >> bit & 1) for n in c.inputs})
            for net, v in single.items():
                assert bool(values[net] >> bit & 1) == v

    def test_values_masked_to_word(self):
        c = make_random_circuit(1)
        words = {n: WORD_MASK for n in c.inputs}
        for v in simulate_words(c, words).values():
            assert 0 <= v <= WORD_MASK


class TestPatternPacking:
    def test_roundtrip(self):
        inputs = ["a", "b", "c"]
        rng = random.Random(0)
        pats = [{n: bool(rng.getrandbits(1)) for n in inputs}
                for _ in range(10)]
        words = patterns_to_words(inputs, pats)
        assert words_to_patterns(inputs, words, 10) == pats

    def test_too_many_patterns(self):
        inputs = ["a"]
        pats = [{"a": False}] * (WORD_BITS + 1)
        with pytest.raises(NetlistError):
            patterns_to_words(inputs, pats)

    def test_bit_positions(self):
        words = patterns_to_words(["a"], [{"a": False}, {"a": True}])
        assert words["a"] == 0b10


class TestSignature:
    def test_deterministic(self):
        c = make_random_circuit(7)
        assert signature(c, rounds=3) == signature(c, rounds=3)

    def test_seed_changes_signature(self):
        c = make_random_circuit(7)
        assert signature(c, rounds=3, seed=1) != \
            signature(c, rounds=3, seed=2)

    def test_equal_functions_equal_signatures(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="g1")
        c.and_("b", "a", name="g2")
        sigs = signature(c, rounds=2)
        assert sigs["g1"] == sigs["g2"]

    def test_covers_all_nets(self):
        c = make_random_circuit(9)
        sigs = signature(c, rounds=1)
        assert set(sigs) == set(c.nets())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), bit=st.integers(0, 63))
def test_word_simulation_matches_boolean(seed, bit):
    """Property: any bit lane of word simulation equals scalar simulation."""
    c = make_random_circuit(seed % 50, n_inputs=4, n_gates=12, n_outputs=2)
    rng = random.Random(seed)
    words = random_patterns(c.inputs, rng)
    lane = {n: bool(words[n] >> bit & 1) for n in c.inputs}
    scalar = simulate(c, lane)
    vector = simulate_words(c, words)
    for net in c.nets():
        assert scalar[net] == bool(vector[net] >> bit & 1)
