"""Bit-equivalence of :class:`CompiledPlan` against the reference walk.

The compiled simulation plan is a pure performance device: every test
here pins its results to the legacy per-gate dictionary walk (forced by
passing an explicit ``order=``), on whole circuits, output cones and
multi-word batches, plus the derived-cache lifecycle (plans recompile
after any mutation and never ship across pickling).
"""

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.gate import WORD_BITS, WORD_MASK
from repro.netlist.simulate import (
    CompiledPlan,
    batch_mask,
    compiled_plan,
    patterns_to_words,
    random_patterns,
    signature,
    simulate,
    simulate_words,
    words_to_patterns,
)
from repro.netlist.traverse import topological_order, transitive_fanin
from tests.conftest import make_random_circuit


def reference_values(circuit, words):
    """Legacy dict-walk simulation, forced via an explicit order."""
    return simulate_words(circuit, words, list(topological_order(circuit)))


class TestPlanEquivalence:
    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_run_matches_reference_walk(self, seed):
        c = make_random_circuit(seed)
        words = random_patterns(c.inputs, random.Random(seed + 1))
        ref = reference_values(c, words)
        got = compiled_plan(c).run_dict(words)
        for net, value in ref.items():
            assert got[net] == value

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_multiword_batch_matches_per_word_lanes(self, seed):
        c = make_random_circuit(seed)
        rng = random.Random(seed + 2)
        rounds = 3
        word_sets = [random_patterns(c.inputs, rng) for _ in range(rounds)]
        batched = {n: 0 for n in c.inputs}
        for r, words in enumerate(word_sets):
            for name, word in words.items():
                batched[name] |= word << (WORD_BITS * r)
        values = compiled_plan(c).run_dict(batched, mask=batch_mask(rounds))
        for r, words in enumerate(word_sets):
            ref = reference_values(c, words)
            for net, value in ref.items():
                lane = (values[net] >> (WORD_BITS * r)) & WORD_MASK
                assert lane == value

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_signature_batched_matches_reference(self, seed):
        c = make_random_circuit(seed)
        ref = signature(c, rounds=4, seed=7,
                        order=topological_order(c))
        assert signature(c, rounds=4, seed=7) == ref

    def test_cone_plan_matches_full_simulation(self):
        c = make_random_circuit(11)
        root = c.outputs["y0"]
        plan = compiled_plan(c, roots=[root])
        cone = transitive_fanin(c, [root])
        assert set(plan.names) <= cone
        words = random_patterns(c.inputs, random.Random(3))
        full = reference_values(c, words)
        values = plan.run_dict(words)
        for net, value in values.items():
            assert value == full[net]

    def test_plan_counts_evals(self):
        c = make_random_circuit(12)
        plan = compiled_plan(c)
        assert plan.evals == 0
        words = random_patterns(c.inputs, random.Random(0))
        plan.run(words)
        plan.run(words)
        assert plan.evals == 2


class TestDerivedCacheLifecycle:
    def test_plan_and_topo_order_are_cached(self):
        c = make_random_circuit(13)
        assert compiled_plan(c) is compiled_plan(c)
        assert topological_order(c) is topological_order(c)

    def test_cone_plans_cached_separately(self):
        c = make_random_circuit(14)
        root = c.outputs["y1"]
        whole = compiled_plan(c)
        cone = compiled_plan(c, roots=[root])
        assert cone is not whole
        assert compiled_plan(c, roots=[root]) is cone

    def test_mutation_invalidates_and_recompiles(self):
        c = make_random_circuit(15)
        stale_plan = compiled_plan(c)
        stale_order = topological_order(c)
        gname = list(c.gates)[-1]
        # rewiring to a primary input can never create a cycle
        c.rewire_pin(Pin.gate(gname, 0), c.inputs[0])
        assert compiled_plan(c) is not stale_plan
        assert topological_order(c) is not stale_order
        words = random_patterns(c.inputs, random.Random(4))
        ref = reference_values(c, words)
        got = compiled_plan(c).run_dict(words)
        for net, value in ref.items():
            assert got[net] == value

    def test_pickling_strips_derived_cache(self):
        c = make_random_circuit(16)
        compiled_plan(c)
        topological_order(c)
        assert c.derived_cache()
        clone = pickle.loads(pickle.dumps(c))
        assert clone.derived_cache() == {}
        words = random_patterns(c.inputs, random.Random(5))
        assert (compiled_plan(clone).run_dict(words)
                == compiled_plan(c).run_dict(words))

    def test_plan_itself_pickles(self):
        c = make_random_circuit(17)
        plan = compiled_plan(c)
        clone = pickle.loads(pickle.dumps(plan))
        words = random_patterns(c.inputs, random.Random(6))
        assert clone.run(words) == plan.run(words)


class TestSimulationEntryPoints:
    def test_simulate_missing_input_raises(self):
        c = Circuit("c")
        a, b = c.add_inputs(["a", "b"])
        c.set_output("o", c.and_(a, b, name="g"))
        with pytest.raises(NetlistError):
            simulate(c, {"a": True})

    def test_simulate_single_assignment_matches_plan(self):
        c = make_random_circuit(18)
        assignment = {n: bool(i % 2) for i, n in enumerate(c.inputs)}
        values = simulate(c, assignment)
        words = {n: WORD_MASK if v else 0 for n, v in assignment.items()}
        ref = reference_values(c, words)
        for net, value in values.items():
            assert value == bool(ref[net] & 1)

    def test_patterns_to_words_roundtrip(self):
        c = make_random_circuit(19)
        rng = random.Random(7)
        patterns = [{n: bool(rng.getrandbits(1)) for n in c.inputs}
                    for _ in range(10)]
        words = patterns_to_words(c.inputs, patterns)
        assert words_to_patterns(c.inputs, words, len(patterns)) == patterns

    def test_patterns_to_words_rejects_overflow(self):
        c = make_random_circuit(20)
        patterns = [{n: False for n in c.inputs}] * (WORD_BITS + 1)
        with pytest.raises(NetlistError):
            patterns_to_words(c.inputs, patterns)
