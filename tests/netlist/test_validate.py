"""Unit tests for well-formedness validation."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate, GateType
from repro.netlist.validate import is_well_formed, validate, \
    validation_problems


def good() -> Circuit:
    c = Circuit()
    c.add_inputs(["a", "b"])
    c.and_("a", "b", name="g")
    c.set_output("o", "g")
    return c


class TestValidate:
    def test_well_formed_circuit_passes(self):
        validate(good())
        assert is_well_formed(good())

    def test_no_outputs_is_a_problem(self):
        c = Circuit()
        c.add_input("a")
        assert any("no outputs" in p for p in validation_problems(c))

    def test_dangling_fanin_detected(self):
        c = good()
        c.gates["g"].fanins[0] = "ghost"
        assert not is_well_formed(c)
        with pytest.raises(NetlistError):
            validate(c)

    def test_dangling_output_detected(self):
        c = good()
        c.outputs["o"] = "ghost"
        assert any("dangling" in p for p in validation_problems(c))

    def test_cycle_detected(self):
        c = good()
        c.or_("g", "a", name="h")
        c.gates["g"].fanins[0] = "h"
        assert any("cycle" in p for p in validation_problems(c))

    def test_bad_arity_detected(self):
        c = good()
        # bypass the Gate constructor check by mutating fanins
        c.gates["g"].fanins.append("a")
        c.gates["g"].fanins.append("b")
        object.__setattr__  # silence lint; Gate is slotted, mutate list ok
        bad = Gate.__new__(Gate)
        bad.name = "g"
        bad.gtype = GateType.NOT
        bad.fanins = ["a", "b"]
        c.gates["g"] = bad
        assert any("arity" in p for p in validation_problems(c))

    def test_gate_key_mismatch(self):
        c = good()
        gate = c.gates.pop("g")
        c.gates["renamed"] = gate
        probs = validation_problems(c)
        assert any("key" in p for p in probs)
