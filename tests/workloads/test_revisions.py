"""Tests for ground-truth specification revisions."""

import random

import pytest

from repro.cec.equivalence import check_equivalence, nonequivalent_outputs
from repro.errors import ReproError
from repro.netlist.validate import is_well_formed
from repro.workloads.generators import alu_design, control_design
from repro.workloads.revisions import (
    apply_revision,
    compose_revisions,
)

KINDS = ["gate-type", "wrong-input", "add-condition", "polarity",
         "word-redefine"]


@pytest.mark.parametrize("kind", KINDS)
def test_revision_changes_function(kind):
    spec = control_design(n_inputs=8, n_outputs=5, n_terms=10, seed=4)
    revised = spec.copy()
    rev = apply_revision(revised, kind, seed=2)
    assert is_well_formed(revised)
    assert rev.estimate_gates >= 1
    result = check_equivalence(spec, revised)
    assert result.equivalent is False


@pytest.mark.parametrize("kind", KINDS)
def test_affected_outputs_cover_failures(kind):
    spec = alu_design(width=3)
    revised = spec.copy()
    rev = apply_revision(revised, kind, seed=6)
    failing = nonequivalent_outputs(spec, revised)
    assert set(failing) <= set(rev.affected_outputs)


def test_unknown_kind_rejected():
    spec = alu_design(width=2)
    with pytest.raises(ReproError):
        apply_revision(spec, "no-such-kind")


def test_revision_is_deterministic():
    spec1 = control_design(n_inputs=8, n_outputs=4, n_terms=8, seed=9)
    spec2 = spec1.copy()
    r1 = apply_revision(spec1, "gate-type", seed=13)
    r2 = apply_revision(spec2, "gate-type", seed=13)
    assert r1.description == r2.description


def test_bias_deep_touches_more_outputs_on_average():
    touched = {"deep": 0, "shallow": 0}
    for seed in range(6):
        for bias in ("deep", "shallow"):
            spec = control_design(n_inputs=10, n_outputs=8, n_terms=14,
                                  seed=seed)
            rev = apply_revision(spec, "polarity", seed=seed, bias=bias)
            touched[bias] += len(rev.affected_outputs)
    assert touched["deep"] >= touched["shallow"]


def test_word_redefine_touches_requested_bits():
    spec = alu_design(width=4)
    rev = apply_revision(spec, "word-redefine", seed=3,
                         out_prefix="r", max_bits=2)
    assert len(rev.affected_outputs) == 2
    assert all(p.startswith("r") for p in rev.affected_outputs)


def test_compose_revisions_merges_records():
    spec = control_design(n_inputs=8, n_outputs=5, n_terms=10, seed=5)
    reference = spec.copy()
    rev = compose_revisions(spec, ["gate-type",
                                   ("polarity", {"bias": "deep"})], seed=8)
    assert "+" in rev.kind
    assert rev.estimate_gates >= 2
    assert is_well_formed(spec)
    assert check_equivalence(reference, spec).equivalent is False


def test_add_condition_description_names_target():
    spec = control_design(n_inputs=6, n_outputs=4, n_terms=8, seed=2)
    rev = apply_revision(spec, "add-condition", seed=4)
    assert ":=" in rev.description


@pytest.mark.parametrize("kind", ["drop-term", "extra-term"])
def test_term_revisions_change_function(kind):
    spec = control_design(n_inputs=8, n_outputs=5, n_terms=10, seed=6)
    revised = spec.copy()
    rev = apply_revision(revised, kind, seed=3)
    assert is_well_formed(revised)
    assert check_equivalence(spec, revised).equivalent is False
    assert rev.estimate_gates >= 1


def test_drop_term_shrinks_gate():
    spec = control_design(n_inputs=8, n_outputs=4, n_terms=10, seed=8)
    widths_before = {g: len(spec.gates[g].fanins) for g in spec.gates}
    rev = apply_revision(spec, "drop-term", seed=2)
    target = rev.description.split(":")[0]
    assert len(spec.gates[target].fanins) == widths_before[target] - 1


def test_extra_term_widens_gate():
    spec = control_design(n_inputs=8, n_outputs=4, n_terms=10, seed=8)
    widths_before = {g: len(spec.gates[g].fanins) for g in spec.gates}
    rev = apply_revision(spec, "extra-term", seed=2)
    target = rev.description.split(":")[0]
    assert len(spec.gates[target].fanins) == widths_before[target] + 1


def test_term_revisions_rectifiable():
    from repro.eco.config import EcoConfig
    from repro.eco.engine import rectify
    from repro.synth import optimize_heavy, optimize_light
    spec = control_design(n_inputs=8, n_outputs=5, n_terms=10, seed=12)
    impl = optimize_heavy(spec, seed=44)
    revised = spec.copy()
    apply_revision(revised, "drop-term", seed=1)
    revised = optimize_light(revised)
    result = rectify(impl, revised, EcoConfig(num_samples=8))
    assert check_equivalence(result.patched, revised).equivalent is True
