"""Tests for the scaled Table-1/2/3 suites."""

import pytest

from repro.cec.equivalence import nonequivalent_outputs
from repro.netlist.validate import is_well_formed
from repro.workloads.figures import example1_circuits, figure1_circuits
from repro.workloads.suite import build_case, build_suite, build_timing_case
from repro.errors import ReproError


# small, fast-to-build representatives of the suite
FAST_CASES = [2, 4, 5, 8, 9, 10]


@pytest.mark.parametrize("cid", FAST_CASES)
def test_case_builds_and_differs(cid):
    case = build_case(cid)
    assert case.case_id == cid
    assert is_well_formed(case.impl)
    assert is_well_formed(case.spec)
    failing = nonequivalent_outputs(case.impl, case.spec)
    assert failing, "revision must be observable"
    assert case.designer_estimate >= 1


@pytest.mark.parametrize("cid", FAST_CASES)
def test_case_interfaces_correspond(cid):
    case = build_case(cid)
    assert set(case.spec.inputs) <= set(case.impl.inputs)
    assert set(case.impl.outputs) == set(case.spec.outputs)


def test_case_is_reproducible():
    a = build_case(2)
    b = build_case(2)
    assert a.impl.gates.keys() == b.impl.gates.keys()
    assert a.revision.description == b.revision.description


def test_unknown_case_rejected():
    with pytest.raises(ReproError):
        build_case(99)
    with pytest.raises(ReproError):
        build_timing_case(1)


def test_build_suite_subset():
    cases = build_suite(ids=[2, 5])
    assert [c.case_id for c in cases] == [2, 5]


def test_timing_cases_build():
    for cid in (12, 15):
        case = build_timing_case(cid)
        assert is_well_formed(case.impl)
        assert nonequivalent_outputs(case.impl, case.spec)


class TestFigureCircuits:
    def test_figure1_shape(self):
        impl, spec = figure1_circuits(width=3)
        assert is_well_formed(impl)
        assert is_well_formed(spec)
        assert set(impl.outputs) == set(spec.outputs)
        # d must behave identically in both (it is not revised)
        bad = nonequivalent_outputs(impl, spec)
        assert "d" not in bad
        assert bad == ["w_0", "w_1", "w_2"]  # only the word outputs

    def test_example1_shape(self):
        impl, spec = example1_circuits(width=2)
        bad = nonequivalent_outputs(impl, spec)
        assert set(bad) == {"w_0", "w_1"}
