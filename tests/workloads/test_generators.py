"""Tests for the specification generators."""

import itertools

import pytest

from repro.netlist.simulate import evaluate_outputs
from repro.netlist.validate import is_well_formed
from repro.workloads.generators import (
    alu_design,
    comparator_design,
    control_design,
    mixed_design,
    parity_design,
    priority_encoder,
    random_dag,
    word_mux_design,
)


ALL_FAMILIES = [
    lambda: word_mux_design(2, 4),
    lambda: alu_design(3),
    lambda: control_design(6, 4, 8, seed=1),
    lambda: priority_encoder(4),
    lambda: comparator_design(3),
    lambda: parity_design(6, 2),
    lambda: random_dag(5, 20, 3, seed=2),
]


@pytest.mark.parametrize("builder", ALL_FAMILIES)
def test_families_are_well_formed(builder):
    assert is_well_formed(builder())


@pytest.mark.parametrize("builder", ALL_FAMILIES)
def test_families_deterministic(builder):
    a, b = builder(), builder()
    assert a.inputs == b.inputs
    assert a.outputs == b.outputs
    assert {k: (g.gtype, tuple(g.fanins)) for k, g in a.gates.items()} == \
        {k: (g.gtype, tuple(g.fanins)) for k, g in b.gates.items()}


class TestAluFunction:
    @pytest.mark.parametrize("op,fn", [
        ((False, False), lambda a, b: a + b),
        ((True, False), lambda a, b: a & b),
        ((False, True), lambda a, b: a | b),
        ((True, True), lambda a, b: a ^ b),
    ])
    def test_ops(self, op, fn):
        width = 3
        alu = alu_design(width)
        for a_val, b_val in itertools.product(range(1 << width), repeat=2):
            inputs = {"op0": op[0], "op1": op[1]}
            for k in range(width):
                inputs[f"a{k}"] = bool(a_val >> k & 1)
                inputs[f"b{k}"] = bool(b_val >> k & 1)
            out = evaluate_outputs(alu, inputs)
            got = sum(out[f"r{k}"] << k for k in range(width))
            assert got == fn(a_val, b_val) & ((1 << width) - 1)

    def test_carry_out(self):
        alu = alu_design(2)
        inputs = {"a0": True, "a1": True, "b0": True, "b1": True,
                  "op0": False, "op1": False}
        assert evaluate_outputs(alu, inputs)["cout"] is True


class TestPriorityEncoder:
    def test_single_grant(self):
        pe = priority_encoder(4)
        for req_bits in range(1, 16):
            inputs = {f"req{k}": bool(req_bits >> k & 1) for k in range(4)}
            out = evaluate_outputs(pe, inputs)
            grants = [out[f"gnt{k}"] for k in range(4)]
            assert sum(grants) == 1
            assert grants.index(True) == (req_bits & -req_bits).bit_length() - 1
            assert out["any"] is True

    def test_no_request_no_grant(self):
        pe = priority_encoder(3)
        out = evaluate_outputs(pe, {f"req{k}": False for k in range(3)})
        assert not any(out[f"gnt{k}"] for k in range(3))
        assert out["any"] is False


class TestComparator:
    def test_eq_and_gt(self):
        cmp3 = comparator_design(3)
        for a_val, b_val in itertools.product(range(8), repeat=2):
            inputs = {}
            for k in range(3):
                inputs[f"a{k}"] = bool(a_val >> k & 1)
                inputs[f"b{k}"] = bool(b_val >> k & 1)
            out = evaluate_outputs(cmp3, inputs)
            assert out["eq"] == (a_val == b_val)
            assert out["gt"] == (a_val > b_val)


class TestParity:
    def test_total_parity(self):
        p = parity_design(6, 2)
        for bits in range(64):
            inputs = {f"d{k}": bool(bits >> k & 1) for k in range(6)}
            out = evaluate_outputs(p, inputs)
            assert out["p_all"] == (bin(bits).count("1") % 2 == 1)


class TestWordMux:
    def test_select_routes_word(self):
        wm = word_mux_design(2, 3)
        inputs = {"sel0": True, "sel1": False}
        for k in range(3):
            inputs[f"w0_{k}"] = bool(k % 2)
            inputs[f"w1_{k}"] = True
        out = evaluate_outputs(wm, inputs)
        for k in range(3):
            assert out[f"out_{k}"] == bool(k % 2)


class TestMixedDesign:
    def test_blocks_isolated(self):
        blocks = [("x", parity_design(4, 2)), ("y", comparator_design(2))]
        mix = mixed_design(blocks)
        assert is_well_formed(mix)
        assert any(p.startswith("x_") for p in mix.outputs)
        assert any(p.startswith("y_") for p in mix.outputs)

    def test_glue_adds_outputs(self):
        blocks = [("x", parity_design(8, 2)), ("y", comparator_design(4))]
        plain = mixed_design(blocks)
        glued = mixed_design(blocks, glue_seed=3)
        assert len(glued.outputs) > len(plain.outputs)
        assert is_well_formed(glued)


class TestDecoder:
    def test_one_hot(self):
        from repro.workloads.generators import decoder_design
        d = decoder_design(3)
        for k in range(8):
            ins = {f"s{i}": bool(k >> i & 1) for i in range(3)}
            ins["en"] = True
            out = evaluate_outputs(d, ins)
            assert sum(out[f"d{j}"] for j in range(8)) == 1
            assert out[f"d{k}"] is True

    def test_enable_gates_everything(self):
        from repro.workloads.generators import decoder_design
        d = decoder_design(2)
        ins = {"s0": True, "s1": False, "en": False}
        out = evaluate_outputs(d, ins)
        assert not any(out[f"d{j}"] for j in range(4))

    def test_without_enable(self):
        from repro.workloads.generators import decoder_design
        d = decoder_design(2, enable=False)
        assert "en" not in d.inputs
        assert is_well_formed(d)


class TestMultiplier:
    def test_exhaustive_products(self):
        from repro.workloads.generators import multiplier_design
        w = 3
        m = multiplier_design(w)
        assert is_well_formed(m)
        for a in range(1 << w):
            for b in range(1 << w):
                ins = {}
                for k in range(w):
                    ins[f"a{k}"] = bool(a >> k & 1)
                    ins[f"b{k}"] = bool(b >> k & 1)
                out = evaluate_outputs(m, ins)
                got = sum(out[f"p{j}"] << j for j in range(2 * w))
                assert got == a * b, (a, b)

    def test_is_deep(self):
        from repro.netlist.traverse import levelize
        from repro.workloads.generators import multiplier_design
        m = multiplier_design(4)
        assert max(levelize(m).values()) >= 10
