"""Tests for constant propagation and algebraic simplification."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.simulate import evaluate_outputs
from repro.synth.simplify import simplify_constants
from tests.conftest import exhaustive_equivalent, make_random_circuit


def out_value(c: Circuit, **inputs) -> bool:
    return evaluate_outputs(c, inputs)[next(iter(c.outputs))]


class TestConstantFolds:
    def test_and_with_zero(self):
        c = Circuit()
        c.add_input("a")
        k = c.const0()
        c.set_output("o", c.and_("a", k))
        s = simplify_constants(c)
        assert s.num_gates <= 1  # only the constant remains
        assert not out_value(s, a=True)

    def test_and_with_one_drops_operand(self):
        c = Circuit()
        c.add_input("a")
        k = c.const1()
        c.set_output("o", c.and_("a", k))
        s = simplify_constants(c)
        assert s.outputs["o"] == "a"

    def test_or_with_one(self):
        c = Circuit()
        c.add_input("a")
        k = c.const1()
        c.set_output("o", c.or_("a", k))
        s = simplify_constants(c)
        assert out_value(s, a=False)

    def test_double_negation(self):
        c = Circuit()
        c.add_input("a")
        n1 = c.not_("a")
        n2 = c.not_(n1)
        c.set_output("o", n2)
        s = simplify_constants(c)
        assert s.outputs["o"] == "a"
        assert s.num_gates == 0

    def test_xor_duplicate_cancels(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.set_output("o", c.xor("a", "a", "b"))
        s = simplify_constants(c)
        assert s.outputs["o"] == "b"

    def test_xor_with_complement_is_one_xor_rest(self):
        c = Circuit()
        c.add_input("a")
        na = c.not_("a")
        c.set_output("o", c.xor("a", na))
        s = simplify_constants(c)
        assert out_value(s, a=False) and out_value(s, a=True)

    def test_and_with_complement_is_zero(self):
        c = Circuit()
        c.add_input("a")
        na = c.not_("a")
        c.set_output("o", c.and_("a", na))
        s = simplify_constants(c)
        assert not out_value(s, a=False) and not out_value(s, a=True)

    def test_or_duplicate_operands(self):
        c = Circuit()
        c.add_input("a")
        c.set_output("o", c.or_("a", "a", "a"))
        s = simplify_constants(c)
        assert s.outputs["o"] == "a"

    def test_mux_constant_select(self):
        c = Circuit()
        c.add_inputs(["x", "y"])
        k = c.const1()
        c.set_output("o", c.mux(k, "x", "y"))
        s = simplify_constants(c)
        assert s.outputs["o"] == "y"

    def test_mux_equal_data(self):
        c = Circuit()
        c.add_inputs(["s", "x"])
        c.set_output("o", c.mux("s", "x", "x"))
        s = simplify_constants(c)
        assert s.outputs["o"] == "x"

    def test_mux_const_data_is_select(self):
        c = Circuit()
        c.add_input("s")
        k0, k1 = c.const0(), c.const1()
        c.set_output("o", c.mux("s", k0, k1))
        s = simplify_constants(c)
        assert s.outputs["o"] == "s"

    def test_nand_of_constant_one(self):
        c = Circuit()
        c.add_input("a")
        k = c.const1()
        c.set_output("o", c.nand("a", k))
        s = simplify_constants(c)
        assert out_value(s, a=False) and not out_value(s, a=True)

    def test_buffer_chain_collapses(self):
        c = Circuit()
        c.add_input("a")
        b1 = c.buf("a")
        b2 = c.buf(b1)
        c.set_output("o", b2)
        s = simplify_constants(c)
        assert s.outputs["o"] == "a"


class TestFunctionPreservation:
    def test_random_circuits(self):
        for seed in range(15):
            c = make_random_circuit(seed, n_inputs=5, n_gates=25)
            s = simplify_constants(c)
            assert exhaustive_equivalent(c, s), seed

    def test_circuits_with_embedded_constants(self):
        for seed in range(8):
            c = make_random_circuit(seed, n_inputs=4, n_gates=10)
            k0 = c.const0()
            k1 = c.const1()
            # splice constants into a couple of gates
            gnames = sorted(c.gates)[:2]
            for g, k in zip(gnames, (k0, k1)):
                if c.gates[g].fanins:
                    c.gates[g].fanins[0] = k
            s = simplify_constants(c)
            assert exhaustive_equivalent(c, s), seed

    def test_never_grows(self):
        for seed in range(8):
            c = make_random_circuit(seed)
            s = simplify_constants(c)
            assert s.num_gates <= c.num_gates + 2  # +2 for const nets
