"""Tests for the heavy/light synthesis scripts."""

from repro.cec.equivalence import check_equivalence
from repro.netlist.hashing import structural_hash, strash
from repro.synth.scripts import optimize_heavy, optimize_light, run_script
from tests.conftest import exhaustive_equivalent, make_random_circuit


class TestScripts:
    def test_light_preserves_function(self):
        for seed in range(8):
            c = make_random_circuit(seed)
            assert exhaustive_equivalent(c, optimize_light(c)), seed

    def test_heavy_preserves_function(self):
        for seed in range(8):
            c = make_random_circuit(seed)
            assert check_equivalence(c, optimize_heavy(c, seed=seed)), seed

    def test_heavy_changes_structure(self):
        diverged = 0
        for seed in range(6):
            c = make_random_circuit(seed, n_gates=30)
            h = optimize_heavy(c, seed=seed)
            base = strash(c)
            if structural_hash(h) != structural_hash(base):
                diverged += 1
        assert diverged >= 5  # the whole point of the heavy script

    def test_heavy_seeds_differ(self):
        c = make_random_circuit(9, n_gates=30)
        h1 = optimize_heavy(c, seed=1)
        h2 = optimize_heavy(c, seed=2)
        assert structural_hash(h1) != structural_hash(h2)
        assert check_equivalence(h1, h2)

    def test_heavy_without_sweep(self):
        c = make_random_circuit(3)
        h = optimize_heavy(c, seed=1, sweep=False)
        assert check_equivalence(c, h)

    def test_run_script_composition(self):
        c = make_random_circuit(2)
        result = run_script(c, [strash, strash])
        assert exhaustive_equivalent(c, result)

    def test_io_names_preserved(self):
        c = make_random_circuit(6)
        for opt in (optimize_light, optimize_heavy):
            r = opt(c)
            assert r.inputs == c.inputs
            assert set(r.outputs) == set(c.outputs)
