"""Tests for restructuring passes."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.netlist.hashing import structural_hash
from repro.netlist.traverse import levelize
from repro.synth.restructure import balance, decompose_two_input, \
    demorgan_restructure
from tests.conftest import exhaustive_equivalent, make_random_circuit


class TestDecompose:
    def test_all_gates_at_most_two_inputs(self):
        for seed in range(6):
            c = make_random_circuit(seed, n_gates=20)
            d = decompose_two_input(c, seed=seed)
            for g in d.gates.values():
                if g.gtype is not GateType.MUX:
                    assert len(g.fanins) <= 2

    def test_preserves_function(self):
        for seed in range(10):
            c = make_random_circuit(seed, n_gates=20)
            d = decompose_two_input(c, seed=seed)
            assert exhaustive_equivalent(c, d), seed

    def test_deterministic_without_seed(self):
        c = make_random_circuit(5)
        d1 = decompose_two_input(c)
        d2 = decompose_two_input(c)
        assert structural_hash(d1) == structural_hash(d2)

    def test_seeds_change_structure(self):
        c = Circuit()
        c.add_inputs(["a", "b", "c", "d", "e"])
        c.set_output("o", c.and_("a", "b", "c", "d", "e"))
        shapes = set()
        for seed in range(6):
            d = decompose_two_input(c, seed=seed)
            order = tuple(tuple(g.fanins) for g in d.gates.values())
            shapes.add(order)
        assert len(shapes) > 1

    def test_inverted_types_become_tree_plus_inverter(self):
        c = Circuit()
        c.add_inputs(["a", "b", "c"])
        c.set_output("o", c.nand("a", "b", "c"))
        d = decompose_two_input(c)
        types = [g.gtype for g in d.gates.values()]
        assert GateType.NOT in types
        assert GateType.NAND not in types
        assert exhaustive_equivalent(c, d)


class TestDeMorgan:
    def test_preserves_function(self):
        for seed in range(10):
            c = make_random_circuit(seed, n_gates=20)
            d = demorgan_restructure(c, seed=seed, probability=0.7)
            assert exhaustive_equivalent(c, d), seed

    def test_probability_zero_is_identity_shape(self):
        c = make_random_circuit(4)
        d = demorgan_restructure(c, probability=0.0)
        assert structural_hash(c) == structural_hash(d)

    def test_probability_one_rewrites_all_and_or(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.set_output("o", c.and_("a", "b"))
        d = demorgan_restructure(c, probability=1.0)
        types = {g.gtype for g in d.gates.values()}
        assert GateType.AND not in types
        assert GateType.NOR in types


class TestBalance:
    def test_preserves_function(self):
        for seed in range(8):
            c = make_random_circuit(seed, n_gates=20)
            b = balance(c)
            assert exhaustive_equivalent(c, b), seed

    def test_chain_depth_reduced(self):
        c = Circuit()
        ins = c.add_inputs([f"x{i}" for i in range(8)])
        acc = ins[0]
        for x in ins[1:]:
            acc = c.and_(acc, x)
        c.set_output("o", acc)
        before = max(levelize(c).values())
        after = max(levelize(balance(c)).values())
        assert before == 7
        assert after <= 4  # log2(8) rounded up, via n-ary collapse

    def test_multi_sink_intermediates_not_collapsed(self):
        c = Circuit()
        c.add_inputs(["a", "b", "c"])
        shared = c.and_("a", "b", name="shared")
        c.set_output("o1", c.and_(shared, "c"))
        c.set_output("o2", shared)
        b = balance(c)
        assert exhaustive_equivalent(c, b)
