"""Tests for the cone-replacement baseline."""

from repro.baselines.conemap import ConeMap
from repro.cec.equivalence import check_equivalence
from repro.netlist.circuit import Circuit
from repro.netlist.validate import is_well_formed
from repro.workloads.figures import example1_circuits


class TestConeMap:
    def test_rectifies_example1(self):
        impl, spec = example1_circuits(width=2)
        result = ConeMap().rectify(impl, spec)
        assert is_well_formed(result.patched)
        assert check_equivalence(result.patched, spec).equivalent

    def test_patch_covers_whole_cones(self):
        impl, spec = example1_circuits(width=2)
        result = ConeMap().rectify(impl, spec)
        # each failing output's full spec cone is cloned (shared c_new)
        stats = result.stats()
        assert stats.gates >= 4  # both outputs' cones

    def test_noop_on_equivalent(self, tiny_adder):
        result = ConeMap().rectify(tiny_adder, tiny_adder.copy())
        assert len(result.patch.ops) == 0
        assert result.stats().gates == 0

    def test_clones_shared_between_outputs(self):
        impl, spec = example1_circuits(width=2)
        result = ConeMap().rectify(impl, spec)
        # c_new feeds both failing cones but is cloned only once
        clones = [g for g in result.patch.cloned_gates
                  if "c_new" in g and not g.endswith("2")]
        assert len(clones) == 1

    def test_per_output_labelled(self):
        impl, spec = example1_circuits(width=2)
        result = ConeMap().rectify(impl, spec)
        assert all(v == "cone-replace" for v in result.per_output.values())

    def test_original_untouched(self):
        impl, spec = example1_circuits(width=2)
        before = impl.num_gates
        ConeMap().rectify(impl, spec)
        assert impl.num_gates == before
