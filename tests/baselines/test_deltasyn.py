"""Tests for the DeltaSyn baseline."""

import pytest

from repro.baselines.deltasyn import DeltaSyn
from repro.cec.equivalence import check_equivalence
from repro.netlist.circuit import Circuit
from repro.netlist.validate import is_well_formed
from repro.synth import optimize_heavy, optimize_light
from repro.workloads.figures import example1_circuits
from repro.workloads.generators import control_design
from repro.workloads.revisions import apply_revision


def revised_pair(seed=1, kind="gate-type"):
    spec = control_design(n_inputs=8, n_outputs=5, n_terms=10, seed=seed)
    impl = optimize_heavy(spec, seed=seed + 50)
    revised = spec.copy()
    apply_revision(revised, kind, seed=seed)
    return impl, optimize_light(revised)


class TestMatching:
    def test_inputs_always_match(self):
        impl, spec = revised_pair()
        matches = DeltaSyn().match_signals(impl, spec)
        for n in spec.inputs:
            assert matches.get(n) == n

    def test_equivalent_nets_found(self):
        impl = Circuit("i")
        impl.add_inputs(["a", "b"])
        impl.and_("a", "b", name="x")
        impl.set_output("o", "x")
        spec = Circuit("s")
        spec.add_inputs(["a", "b"])
        spec.and_("b", "a", name="y")
        spec.not_("y", name="z")
        spec.set_output("o", "z")
        matches = DeltaSyn().match_signals(impl, spec)
        assert matches.get("y") == "x"

    def test_changed_nets_unmatched(self):
        impl = Circuit("i")
        impl.add_inputs(["a", "b"])
        impl.and_("a", "b", name="x")
        impl.set_output("o", "x")
        spec = Circuit("s")
        spec.add_inputs(["a", "b"])
        spec.xor("a", "b", name="y")
        spec.set_output("o", "y")
        matches = DeltaSyn().match_signals(impl, spec)
        assert "y" not in matches


class TestRectify:
    def test_rectifies_and_verifies(self):
        impl, spec = revised_pair()
        result = DeltaSyn().rectify(impl, spec)
        assert is_well_formed(result.patched)
        assert check_equivalence(result.patched, spec).equivalent

    @pytest.mark.parametrize("kind", ["gate-type", "polarity",
                                      "wrong-input"])
    def test_revision_kinds(self, kind):
        impl, spec = revised_pair(seed=3, kind=kind)
        result = DeltaSyn().rectify(impl, spec)
        assert check_equivalence(result.patched, spec).equivalent

    def test_noop_on_equivalent(self, tiny_adder):
        result = DeltaSyn().rectify(tiny_adder, tiny_adder.copy())
        assert len(result.patch.ops) == 0

    def test_patch_smaller_than_cone_replacement(self):
        from repro.baselines.conemap import ConeMap
        impl, spec = revised_pair(seed=5)
        delta = DeltaSyn().rectify(impl, spec).stats()
        cone = ConeMap().rectify(impl, spec).stats()
        assert delta.gates <= cone.gates

    def test_example1(self):
        impl, spec = example1_circuits(width=2)
        result = DeltaSyn().rectify(impl, spec)
        assert check_equivalence(result.patched, spec).equivalent

    def test_original_untouched(self):
        impl, spec = revised_pair(seed=7)
        gates = {k: g.copy() for k, g in impl.gates.items()}
        DeltaSyn().rectify(impl, spec)
        assert impl.gates == gates
