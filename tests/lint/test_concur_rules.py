"""Tests for the concurrency-discipline rules (``CC...``)."""

import textwrap

from repro.lint.concur_rules import lint_concur_source_text


def codes(text, module="repro/somemod.py"):
    report = lint_concur_source_text(textwrap.dedent(text), module)
    return [d.code for d in report.diagnostics]


class TestCC001RawPrimitives:
    def test_threading_attribute_ctor(self):
        assert codes("""
            import threading
            lock = threading.Lock()
        """) == ["CC001"]

    def test_from_import_ctor(self):
        assert codes("""
            from threading import RLock
            lock = RLock()
        """) == ["CC001"]

    def test_thread_ctor_flagged(self):
        assert "CC001" in codes("""
            import threading
            t = threading.Thread(target=print)
        """)

    def test_sync_module_exempt(self):
        assert codes("""
            import threading
            lock = threading.Lock()
        """, module="repro/runtime/sync.py") == []

    def test_sanctioned_factories_clean(self):
        assert codes("""
            from repro.runtime.sync import make_lock
            lock = make_lock("x")
        """) == []


class TestCC002BareAcquire:
    def test_unprotected_acquire(self):
        assert "CC002" in codes("""
            def f(lock):
                lock.acquire()
                work()
                lock.release()
        """)

    def test_try_finally_shape_ok(self):
        assert "CC002" not in codes("""
            def f(lock):
                lock.acquire()
                try:
                    work()
                finally:
                    lock.release()
        """)

    def test_with_statement_ok(self):
        assert "CC002" not in codes("""
            def f(lock):
                with lock:
                    work()
        """)


class TestCC003BlockingUnderLock:
    def test_sleep_under_lock(self):
        assert "CC003" in codes("""
            import time
            def f(lock):
                with lock:
                    time.sleep(1.0)
        """)

    def test_sleep_outside_lock_ok(self):
        assert "CC003" not in codes("""
            import time
            def f(lock):
                with lock:
                    pass
                time.sleep(1.0)
        """)

    def test_unbounded_join_under_lock(self):
        found = codes("""
            def f(lock, thread):
                with lock:
                    thread.join()
        """)
        assert "CC003" in found


class TestCC005PoolContext:
    def test_ppe_without_context(self):
        assert "CC005" in codes("""
            from concurrent.futures import ProcessPoolExecutor
            pool = ProcessPoolExecutor(max_workers=2)
        """)

    def test_ppe_with_context_ok(self):
        assert "CC005" not in codes("""
            from concurrent.futures import ProcessPoolExecutor
            from repro.runtime.sync import safe_mp_context
            pool = ProcessPoolExecutor(max_workers=2,
                                       mp_context=safe_mp_context())
        """)

    def test_multiprocessing_pool(self):
        assert "CC005" in codes("""
            import multiprocessing
            pool = multiprocessing.Pool(2)
        """)


class TestCC007SwitchInterval:
    def test_flagged_outside_harness(self):
        assert "CC007" in codes("""
            import sys
            sys.setswitchinterval(1e-5)
        """)

    def test_racecheck_exempt(self):
        assert "CC007" not in codes("""
            import sys
            sys.setswitchinterval(1e-5)
        """, module="repro/lint/racecheck.py")


class TestCC008UnboundedJoin:
    def test_zero_arg_join(self):
        assert "CC008" in codes("""
            def f(thread):
                thread.join()
        """)

    def test_join_with_timeout_ok(self):
        assert "CC008" not in codes("""
            def f(thread):
                thread.join(timeout=5.0)
        """)

    def test_str_join_not_confused(self):
        # str.join always takes an argument; zero-arg join is the
        # only shape flagged, so this cannot false-positive
        assert "CC008" not in codes("""
            def f(parts):
                return ", ".join(parts)
        """)


class TestCC009StartMethod:
    def test_set_start_method(self):
        assert "CC009" in codes("""
            import multiprocessing
            multiprocessing.set_start_method("fork")
        """)

    def test_os_fork(self):
        assert "CC009" in codes("""
            import os
            os.fork()
        """)


class TestCC010NestingAdvisory:
    def test_nested_distinct_locks_warn(self):
        report = lint_concur_source_text(textwrap.dedent("""
            def f(a_lock, b_lock):
                with a_lock:
                    with b_lock:
                        pass
        """), "repro/somemod.py")
        assert [d.code for d in report.diagnostics] == ["CC010"]
        # advisory: the report still passes
        assert report.ok

    def test_same_lock_no_warn(self):
        assert codes("""
            def f(a_lock):
                with a_lock:
                    with a_lock:
                        pass
        """) == []

    def test_racecheck_exempt(self):
        assert codes("""
            def f(a_lock, b_lock):
                with a_lock:
                    with b_lock:
                        pass
        """, module="repro/lint/racecheck.py") == []


class TestPlumbing:
    def test_syntax_error_cc000(self):
        assert codes("def broken(:\n") == ["CC000"]

    def test_merged_into_self_lint(self):
        from repro.lint.pylint_rules import lint_sources
        report = lint_sources()
        assert not [d for d in report.diagnostics
                    if d.code.startswith("CC")
                    and d.severity.value == "error"]
