"""Unit tests of the diagnostics core."""

import json

from repro.lint.diag import (
    Diagnostic,
    LintReport,
    Severity,
    error,
    info,
    warning,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR < Severity.WARNING < Severity.INFO

    def test_values_are_stable(self):
        assert Severity.ERROR.value == "error"
        assert Severity.WARNING.value == "warning"
        assert Severity.INFO.value == "info"


class TestDiagnostic:
    def test_render_with_location_and_hint(self):
        d = error("NL010", "combinational cycle", where="net 'g'",
                  hint="break the loop")
        line = d.render()
        assert line == ("NL010 error net 'g': combinational cycle "
                        "(hint: break the loop)")

    def test_render_without_location(self):
        d = info("NL025", "unused input")
        assert d.render() == "NL025 info: unused input"

    def test_as_dict_omits_missing_hint(self):
        d = warning("PA005", "no-op rewire", where="pin")
        payload = d.as_dict()
        assert payload["code"] == "PA005"
        assert payload["severity"] == "warning"
        assert "hint" not in payload

    def test_frozen(self):
        d = error("X001", "x")
        try:
            d.code = "X002"
        except AttributeError:
            return
        raise AssertionError("Diagnostic should be immutable")


class TestLintReport:
    def make(self) -> LintReport:
        r = LintReport(tool="netlist", subject="c")
        r.add(warning("NL020", "floating"))
        r.add(error("NL010", "cycle"))
        r.add(info("NL025", "unused"))
        return r

    def test_queries(self):
        r = self.make()
        assert len(r) == 3
        assert not r.ok
        assert [d.code for d in r.errors] == ["NL010"]
        assert [d.code for d in r.warnings] == ["NL020"]
        assert r.codes() == ["NL010", "NL020", "NL025"]
        assert r.exit_code() == 1

    def test_ok_without_errors(self):
        r = LintReport()
        r.add(warning("NL020", "floating"))
        assert r.ok
        assert r.exit_code() == 0

    def test_merge(self):
        r = LintReport()
        other = LintReport()
        other.add(error("PA001", "cycle"))
        assert r.merge(other) is r
        assert len(r) == 1

    def test_render_text_orders_by_severity(self):
        lines = self.make().render_text().splitlines()
        assert lines[0] == "netlist lint of c"
        assert lines[1].strip().startswith("NL010 error")
        assert lines[2].strip().startswith("NL020 warning")
        assert lines[3].strip().startswith("NL025 info")
        assert lines[-1] == "1 error(s), 1 warning(s), 1 info(s)"

    def test_json_schema(self):
        payload = json.loads(self.make().render_json())
        assert payload["tool"] == "netlist"
        assert payload["ok"] is False
        assert payload["summary"] == {
            "errors": 1, "warnings": 1, "infos": 1}
        assert [d["code"] for d in payload["diagnostics"]] == [
            "NL020", "NL010", "NL025"]
