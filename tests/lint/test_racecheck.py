"""Tests for the seeded race-fuzzing harness (``repro.lint.racecheck``)."""

import sys

import pytest

from repro.lint.racecheck import (
    ALL_TARGET,
    SCENARIOS,
    race_targets,
    run_racecheck,
)
from repro.runtime.sync import sync_debug_enabled


# module-level hooks for the dotted-path target tests -----------------
def clean_callable():
    return None


def failing_callable():
    return ["invariant broke"]


@pytest.fixture(autouse=True)
def _no_debug_leak():
    before = sync_debug_enabled()
    yield
    assert sync_debug_enabled() == before, \
        "racecheck leaked the sync-debug state"


class TestResolution:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            run_racecheck("no-such-scenario")

    def test_bad_dotted_path_rejected(self):
        with pytest.raises(ValueError):
            run_racecheck("tests.lint.test_racecheck:missing")

    def test_targets_listing(self):
        names = dict(race_targets())
        assert ALL_TARGET in names
        assert set(SCENARIOS) <= set(names)


class TestScenarios:
    def test_metrics_scenario_clean(self):
        result = run_racecheck("metrics", runs=2, seed=11)
        assert result.ok
        assert result.acquisitions > 0
        assert result.graph["enabled"]

    def test_live_scenario_clean(self):
        assert run_racecheck("live", runs=2, seed=11).ok

    def test_store_scenario_clean(self):
        assert run_racecheck("store", runs=1, seed=11).ok

    def test_inversion_reproduced_with_stacks(self):
        result = run_racecheck("inversion", runs=1, seed=11)
        assert result.ok
        reproduced = [d for d in result.report.diagnostics
                      if d.code == "RC005"]
        assert reproduced
        hint = reproduced[0].hint or ""
        # both conflicting acquisition orders, each with a stack
        assert hint.count("thread") >= 2
        assert "racecheck.py" in hint
        assert result.graph["violations"]
        violation = result.graph["violations"][0]
        assert len(violation["edges"]) == 2
        assert all(e["stack"] for e in violation["edges"])

    def test_detector_regression_is_an_error(self, monkeypatch):
        # cripple the inversion scenario: the harness must notice the
        # silence and fail with RC004 rather than pass vacuously
        inert = SCENARIOS["inversion"].__class__(
            "inversion", "doc", lambda rng: [], expect_violation=True)
        monkeypatch.setitem(SCENARIOS, "inversion", inert)
        result = run_racecheck("inversion", runs=1, seed=11)
        assert not result.ok
        assert "RC004" in [d.code for d in result.report.diagnostics]


class TestDottedTargets:
    def test_clean_callable_passes(self):
        result = run_racecheck(
            "tests.lint.test_racecheck:clean_callable", runs=1, seed=3)
        assert result.ok

    def test_failures_become_rc001(self):
        result = run_racecheck(
            "tests.lint.test_racecheck:failing_callable",
            runs=2, seed=3)
        assert not result.ok
        rc001 = [d for d in result.report.diagnostics
                 if d.code == "RC001"]
        assert len(rc001) == 2  # one per seeded run
        assert "invariant broke" in rc001[0].message


class TestHarnessHygiene:
    def test_switch_interval_restored(self):
        before = sys.getswitchinterval()
        run_racecheck("inversion", runs=1, seed=5)
        assert sys.getswitchinterval() == before

    def test_seed_determinism(self):
        a = run_racecheck("inversion", runs=2, seed=42)
        b = run_racecheck("inversion", runs=2, seed=42)
        assert [d.code for d in a.report.diagnostics] \
            == [d.code for d in b.report.diagnostics]
