"""CLI tests: `repro lint` and `python -m repro.lint`."""

import json

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main
from repro.netlist.circuit import Circuit
from repro.netlist.io_blif import write_blif


def good(tmp_path, name="c.blif"):
    c = Circuit("good")
    c.add_inputs(["a", "b"])
    c.and_("a", "b", name="g")
    c.set_output("o", "g")
    path = tmp_path / name
    write_blif(c, str(path))
    return path


def bad(tmp_path):
    # written by hand: no .outputs line — the reader accepts this, but
    # the circuit is ill-formed (NL008).  Cyclic/dangling files cannot
    # be used here because read_blif itself rejects them at parse time.
    path = tmp_path / "bad.blif"
    path.write_text(
        ".model bad\n"
        ".inputs a b\n"
        ".names a b g\n11 1\n"
        ".end\n")
    return path


class TestNetlistMode:
    def test_clean_netlist_exits_zero(self, tmp_path, capsys):
        rc = lint_main([str(good(tmp_path))])
        assert rc == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_ill_formed_netlist_exits_one(self, tmp_path, capsys):
        rc = lint_main([str(bad(tmp_path))])
        assert rc == 1
        assert "NL008" in capsys.readouterr().out

    def test_json_format_and_output_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = lint_main([str(good(tmp_path)), "--format", "json",
                        "-o", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["tool"] == "netlist"
        assert payload["ok"] is True
        # stdout carries the same rendering
        assert json.loads(capsys.readouterr().out) == payload

    def test_multiple_netlists_wrapped(self, tmp_path, capsys):
        rc = lint_main([str(good(tmp_path)), str(bad(tmp_path)),
                        "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "lint"
        assert payload["ok"] is False
        assert len(payload["reports"]) == 2


class TestPatchMode:
    def test_cyclic_ops_rejected(self, tmp_path, capsys):
        impl = good(tmp_path)
        ops = tmp_path / "ops.json"
        ops.write_text(json.dumps(
            [{"pin": "gate:g:0", "source": "g"}]))
        rc = lint_main(["--impl", str(impl), "--patch-ops", str(ops)])
        assert rc == 1
        assert "PA001" in capsys.readouterr().out

    def test_patch_ops_require_impl(self, capsys):
        rc = lint_main(["--patch-ops", "ops.json"])
        assert rc == 2

    def test_legal_ops_pass(self, tmp_path, capsys):
        impl = good(tmp_path)
        ops = tmp_path / "ops.json"
        ops.write_text(json.dumps(
            [{"pin": "output:o", "source": "a"}]))
        rc = lint_main(["--impl", str(impl), "--patch-ops", str(ops)])
        assert rc == 0


class TestSelfMode:
    def test_self_is_clean(self, capsys):
        rc = lint_main(["--self"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "self lint" in out

    def test_self_json(self, capsys):
        rc = lint_main(["--self", "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "self"
        assert payload["ok"] is True

    def test_root_override_flags_violations(self, tmp_path, capsys):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import time\nt = time.time()\n")
        rc = lint_main(["--self", "--root", str(pkg)])
        assert rc == 1
        assert "RI001" in capsys.readouterr().out


class TestMainCli:
    def test_repro_lint_subcommand(self, tmp_path, capsys):
        rc = repro_main(["lint", str(good(tmp_path))])
        assert rc == 0

    def test_nothing_to_lint_is_usage_error(self, capsys):
        rc = lint_main([])
        assert rc == 2
