"""Unit tests of the patch analyzer (PatchScreen, PA codes)."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit, Pin
from repro.netlist.traverse import transitive_fanout
from repro.lint.patch_rules import (
    PatchScreen,
    ScreenOp,
    lint_patch_ops,
    parse_ops,
)


def chain() -> Circuit:
    """a -> g1 -> g2 -> g3 -> o, plus a side net s."""
    c = Circuit("chain")
    c.add_inputs(["a", "b"])
    c.not_("a", name="g1")
    c.and_("g1", "b", name="g2")
    c.or_("g2", "a", name="g3")
    c.xor("a", "b", name="s")
    c.set_output("o", "g3")
    c.set_output("os", "s")
    return c


class TestFanoutCone:
    def test_matches_traverse(self):
        c = chain()
        screen = PatchScreen(c)
        for net in c.nets():
            assert screen.fanout_cone(net) == \
                transitive_fanout(c, [net])

    def test_memoized(self):
        screen = PatchScreen(chain())
        first = screen.fanout_cone("g1")
        assert screen.fanout_cone("g1") is first


class TestCyclePath:
    def test_legal_rewire_has_no_cycle(self):
        screen = PatchScreen(chain())
        ops = [ScreenOp(Pin.gate("g3", 0), "s")]
        assert screen.cycle_path(ops) is None

    def test_direct_cycle(self):
        # drive g1's pin from g3: g3 is in g1's fanout cone
        screen = PatchScreen(chain())
        ops = [ScreenOp(Pin.gate("g1", 0), "g3")]
        path = screen.cycle_path(ops)
        assert path is not None
        assert path[0] == "g3"       # the new edge's source
        assert path[-1] == "g3"      # ... reached again: closed cycle
        assert "g1" in path

    def test_self_loop(self):
        screen = PatchScreen(chain())
        path = screen.cycle_path([ScreenOp(Pin.gate("g2", 0), "g2")])
        assert path == ["g2", "g2"]

    def test_masked_edge_prevents_false_rejection(self):
        # rewiring g2's g1-pin to 'a' removes the g1->g2 edge; wiring
        # g1 from g2 is then legal exactly because of that removal
        screen = PatchScreen(chain())
        ops = [
            ScreenOp(Pin.gate("g2", 0), "a"),
            ScreenOp(Pin.gate("g1", 0), "g2"),
        ]
        assert screen.cycle_path(ops) is None

    def test_joint_cycle_through_two_new_edges(self):
        # individually acyclic, jointly cyclic:
        #   s <- g2 (new) and g2's side pin <- s (new)
        c = chain()
        screen = PatchScreen(c)
        ops = [
            ScreenOp(Pin.gate("s", 0), "g2"),
            ScreenOp(Pin.gate("g2", 1), "s"),
        ]
        for op in ops:
            assert screen.cycle_path([op]) is None
        assert screen.cycle_path(ops) is not None

    def test_spec_sourced_ops_never_cycle(self):
        screen = PatchScreen(chain())
        ops = [ScreenOp(Pin.gate("g1", 0), "g3", from_spec=True)]
        assert screen.cycle_path(ops) is None

    def test_output_port_rewire_never_cycles(self):
        screen = PatchScreen(chain())
        ops = [ScreenOp(Pin.output("o"), "g1")]
        assert screen.cycle_path(ops) is None


class TestRules:
    def test_clean_op_passes(self):
        report = lint_patch_ops(chain(),
                                [ScreenOp(Pin.gate("g3", 0), "s")])
        assert report.ok
        assert report.tool == "patch"

    def test_pa001_cycle(self):
        report = lint_patch_ops(chain(),
                                [ScreenOp(Pin.gate("g1", 0), "g3")])
        assert "PA001" in report.codes()
        [diag] = report.errors
        assert "->" in diag.message

    def test_pa002_unknown_gate(self):
        report = lint_patch_ops(chain(),
                                [ScreenOp(Pin.gate("ghost", 0), "s")])
        assert "PA002" in report.codes()

    def test_pa002_bad_index(self):
        report = lint_patch_ops(chain(),
                                [ScreenOp(Pin.gate("g1", 7), "s")])
        assert "PA002" in report.codes()

    def test_pa002_unknown_output_port(self):
        report = lint_patch_ops(chain(),
                                [ScreenOp(Pin.output("ghost"), "s")])
        assert "PA002" in report.codes()

    def test_pa003_support_containment(self):
        c = chain()
        # input index: a=0, b=1; pretend the revised output reads only a
        supports = {"s": 0b11, "g1": 0b01, "a": 0b01, "b": 0b10}
        report = lint_patch_ops(
            c, [ScreenOp(Pin.gate("g3", 0), "s")],
            supports=supports, spec_support_mask=0b01)
        assert "PA003" in report.codes()
        # a source inside the mask is fine
        report = lint_patch_ops(
            c, [ScreenOp(Pin.gate("g3", 0), "g1")],
            supports=supports, spec_support_mask=0b01)
        assert report.ok

    def test_pa004_missing_source(self):
        report = lint_patch_ops(chain(),
                                [ScreenOp(Pin.gate("g1", 0), "ghost")])
        assert "PA004" in report.codes()

    def test_pa004_missing_spec_source(self):
        spec = Circuit("spec")
        spec.add_inputs(["a", "b"])
        spec.and_("a", "b", name="f")
        spec.set_output("o", "f")
        report = lint_patch_ops(
            chain(),
            [ScreenOp(Pin.gate("g1", 0), "ghost", from_spec=True)],
            spec=spec)
        assert "PA004" in report.codes()

    def test_pa005_noop_rewire_is_warning(self):
        report = lint_patch_ops(chain(),
                                [ScreenOp(Pin.gate("g2", 0), "g1")])
        assert "PA005" in report.codes()
        assert report.ok  # warning only

    def test_unsound_ops_skip_cycle_check(self):
        # a dangling pin plus a cyclic op: only PA002 is reported (the
        # cycle walk needs sound pins to be meaningful)
        report = lint_patch_ops(chain(), [
            ScreenOp(Pin.gate("ghost", 0), "s"),
            ScreenOp(Pin.gate("g1", 0), "g3"),
        ])
        assert "PA002" in report.codes()
        assert "PA001" not in report.codes()


class TestParseOps:
    def test_round_trip(self):
        ops = parse_ops([
            {"pin": "gate:g1:0", "source": "s"},
            {"pin": "output:o", "source": "f", "from_spec": True},
        ])
        assert ops[0] == ScreenOp(Pin.gate("g1", 0), "s")
        assert ops[1] == ScreenOp(Pin.output("o"), "f", from_spec=True)

    def test_bad_pin_spec(self):
        with pytest.raises(NetlistError):
            parse_ops([{"pin": "bogus", "source": "s"}])
