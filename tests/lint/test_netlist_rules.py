"""Unit tests of the netlist analyzer — one fixture per NL code."""

from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate, GateType
from repro.lint.netlist_rules import (
    find_cycle,
    lint_netlist,
    well_formedness,
)


def good() -> Circuit:
    c = Circuit("good")
    c.add_inputs(["a", "b"])
    c.and_("a", "b", name="g")
    c.set_output("o", "g")
    return c


def codes(circuit, deep=True):
    return lint_netlist(circuit, deep=deep).codes()


class TestWellFormedness:
    def test_clean_circuit(self):
        report = lint_netlist(good())
        assert report.ok
        assert report.tool == "netlist"
        assert len(report) == 0

    def test_nl001_duplicate_inputs(self):
        c = good()
        # add_input rejects duplicates; model a corrupted reader result
        c.inputs.append("a")
        diags = well_formedness(c)
        assert any(d.code == "NL001" and "a" in d.message for d in diags)

    def test_nl002_key_name_mismatch(self):
        c = good()
        c.gates["renamed"] = c.gates.pop("g")
        assert "NL002" in [d.code for d in well_formedness(c)]

    def test_nl003_input_and_gate(self):
        c = good()
        c.inputs.append("g")
        assert "NL003" in [d.code for d in well_formedness(c)]

    def test_nl004_output_port_collides_with_net(self):
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="o")      # a net named like the port...
        c.or_("a", "b", name="g")
        c.set_output("o", "g")          # ...but the port observes 'g'
        diags = well_formedness(c)
        [nl004] = [d for d in diags if d.code == "NL004"]
        # a serialization hazard (the writer mangles), not a defect:
        # engine fallbacks legitimately leave such circuits behind
        assert nl004.severity.value == "warning"
        assert lint_netlist(c).ok

    def test_nl004_not_raised_when_port_names_its_net(self):
        c = Circuit("c")
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="o")
        c.set_output("o", "o")          # the common, legal aliasing
        assert "NL004" not in [d.code for d in well_formedness(c)]

    def test_nl005_arity(self):
        c = good()
        bad = Gate.__new__(Gate)
        bad.name = "g"
        bad.gtype = GateType.NOT
        bad.fanins = ["a", "b"]
        c.gates["g"] = bad
        assert "NL005" in [d.code for d in well_formedness(c)]

    def test_nl006_dangling_fanin(self):
        c = good()
        c.gates["g"].fanins[0] = "ghost"
        assert "NL006" in [d.code for d in well_formedness(c)]

    def test_nl007_dangling_output(self):
        c = good()
        c.outputs["o"] = "ghost"
        assert "NL007" in [d.code for d in well_formedness(c)]

    def test_nl008_no_outputs(self):
        c = Circuit("c")
        c.add_input("a")
        assert "NL008" in [d.code for d in well_formedness(c)]

    def test_nl010_cycle_reported_with_path(self):
        c = good()
        c.or_("g", "a", name="h")
        c.gates["g"].fanins[0] = "h"
        diags = [d for d in well_formedness(c) if d.code == "NL010"]
        assert len(diags) == 1
        # the message carries the explicit path g -> h -> g (some
        # rotation of it, closed)
        msg = diags[0].message
        assert "->" in msg and "g" in msg and "h" in msg


class TestFindCycle:
    def test_acyclic_returns_none(self):
        assert find_cycle(good()) is None

    def test_cycle_path_is_closed(self):
        c = good()
        c.or_("g", "a", name="h")
        c.gates["g"].fanins[0] = "h"
        path = find_cycle(c)
        assert path is not None
        assert path[0] == path[-1]
        assert set(path) == {"g", "h"}

    def test_self_loop(self):
        c = good()
        c.gates["g"].fanins[0] = "g"
        path = find_cycle(c)
        assert path == ["g", "g"]


class TestHygiene:
    def test_nl020_floating_net(self):
        c = good()
        c.xor("a", "b", name="float")
        assert "NL020" in codes(c)

    def test_nl023_dead_logic(self):
        c = good()
        c.xor("a", "b", name="dead")
        c.not_("dead", name="deader")   # 'dead' has a sink, still dead
        report = lint_netlist(c)
        by_code = {d.code: d for d in report}
        assert "NL023" in by_code
        assert report.ok  # hygiene findings never fail a report

    def test_nl021_constant_foldable(self):
        c = good()
        c.xor("a", "a", name="zero")
        c.set_output("z", "zero")
        diags = [d for d in lint_netlist(c) if d.code == "NL021"]
        assert any("zero" in d.message for d in diags)

    def test_nl021_constant_propagation(self):
        c = Circuit("c")
        c.add_input("a")
        c.add_gate("k0", GateType.CONST0, [])
        c.and_("a", "k0", name="g")     # AND with 0 is constant 0
        c.set_output("o", "g")
        diags = [d for d in lint_netlist(c) if d.code == "NL021"]
        assert any("'g'" in d.message for d in diags)

    def test_nl022_duplicate_structure(self):
        c = good()
        c.and_("a", "b", name="g2")     # same function as g
        c.set_output("o2", "g2")
        diags = [d for d in lint_netlist(c) if d.code == "NL022"]
        assert len(diags) == 1
        assert "g" in diags[0].message and "g2" in diags[0].message

    def test_nl025_unused_input(self):
        c = good()
        c.add_input("unused")
        assert "NL025" in codes(c)

    def test_nl030_width_gap(self):
        c = Circuit("c")
        c.add_inputs(["a0", "a1", "a3", "b"])
        c.and_("a0", "a1", name="g")
        c.set_output("o", "g")
        diags = [d for d in lint_netlist(c) if d.code == "NL030"]
        assert len(diags) == 1
        assert "a2" in diags[0].message

    def test_deep_false_skips_hygiene(self):
        c = good()
        c.xor("a", "b", name="float")
        assert codes(c, deep=False) == []

    def test_hygiene_skipped_when_ill_formed(self):
        c = good()
        c.outputs["o"] = "ghost"
        c.xor("a", "b", name="float")
        report = lint_netlist(c)
        assert "NL007" in report.codes()
        assert "NL020" not in report.codes()
