"""Unit tests of the repo-invariant analyzer, plus the acceptance
check that the real tree is clean."""

from repro.lint.pylint_rules import lint_source_text, lint_sources


def run(snippet: str, module: str = "repro/somewhere/mod.py"):
    return lint_source_text(snippet, module)


class TestRules:
    def test_ri000_syntax_error(self):
        report = run("def broken(:\n")
        assert report.codes() == ["RI000"]

    def test_ri001_wall_clock(self):
        report = run("import time\nstart = time.time()\n")
        assert "RI001" in report.codes()

    def test_ri001_allowed_in_runtime(self):
        report = run("import time\nstart = time.time()\n",
                     module="repro/runtime/clock.py")
        assert report.ok

    def test_ri002_global_random(self):
        report = run("import random\nx = random.randint(0, 7)\n")
        assert "RI002" in report.codes()

    def test_ri002_unseeded_random_instance(self):
        report = run("import random\nrng = random.Random()\n")
        assert "RI002" in report.codes()

    def test_ri002_seeded_instance_is_fine(self):
        report = run("import random\nrng = random.Random(7)\n"
                     "x = rng.randint(0, 7)\n")
        assert report.ok

    def test_ri003_unsupervised_solve(self):
        report = run("result = solver.solve([lit])\n")
        assert "RI003" in report.codes()

    def test_ri003_allowed_in_sat_layer(self):
        report = run("result = solver.solve([lit])\n",
                     module="repro/sat/solver.py")
        assert report.ok

    def test_ri004_bare_except(self):
        report = run("try:\n    x = 1\nexcept:\n    pass\n")
        assert "RI004" in report.codes()

    def test_ri004_typed_except_is_fine(self):
        report = run("try:\n    x = 1\nexcept ValueError:\n    pass\n")
        assert report.ok

    def test_ri005_mutating_method(self):
        report = run("circuit.rewire_pin(pin, net)\n")
        assert "RI005" in report.codes()

    def test_ri005_subscript_assignment(self):
        report = run("circuit.gates['g'].fanins[0] = 'other'\n")
        assert "RI005" in report.codes()

    def test_ri005_allowed_in_eco(self):
        report = run("circuit.rewire_pin(pin, net)\n",
                     module="repro/eco/validate.py")
        assert report.ok

    def test_ri006_library_print(self):
        report = run("print('hello')\n")
        assert "RI006" in report.codes()

    def test_ri006_cli_may_print(self):
        report = run("print('hello')\n", module="repro/cli.py")
        assert report.ok

    def test_ri007_numpy_import(self):
        report = run("import numpy as np\n")
        assert "RI007" in report.codes()

    def test_ri007_from_numpy_import(self):
        report = run("from numpy import uint64\n")
        assert "RI007" in report.codes()

    def test_ri007_numpy_submodule_import(self):
        report = run("import numpy.linalg\n")
        assert "RI007" in report.codes()

    def test_ri007_allowed_in_simd(self):
        report = run("import numpy as np\n",
                     module="repro/netlist/simd.py")
        assert report.ok

    def test_ri007_relative_import_is_fine(self):
        # `from .numpy import x` is a local module, not the library
        report = run("from .numpy import helper\n")
        assert report.ok

    def test_diagnostics_carry_file_location(self):
        report = run("import time\nx = time.time()\n",
                     module="repro/eco/engine.py")
        [diag] = report.errors
        assert diag.where.startswith("repro/eco/engine.py:2:")


class TestRealTree:
    def test_repro_sources_are_clean(self):
        """Acceptance: `repro lint --self` passes on the actual tree
        with the custom AST rules active."""
        report = lint_sources()
        assert report.ok, report.render_text()

    def test_at_least_four_rules_exist(self):
        # the custom rule surface the CI gate relies on
        snippets = {
            "RI001": "import time\nt = time.time()\n",
            "RI002": "import random\nrandom.seed(1)\n",
            "RI003": "s.solve()\n",
            "RI004": "try:\n    pass\nexcept:\n    pass\n",
            "RI005": "c.remove_gate('g')\n",
            "RI006": "print(1)\n",
            "RI007": "import numpy\n",
        }
        fired = {code for code, text in snippets.items()
                 if code in run(text).codes()}
        assert len(fired) >= 4
        assert fired == set(snippets)
