"""Cross-module integration and end-to-end property tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cec import check_equivalence, nonequivalent_outputs
from repro.eco import EcoConfig, SysEco, rectify
from repro.baselines import ConeMap, DeltaSyn
from repro.netlist import (
    dumps_blif,
    dumps_verilog,
    loads_blif,
    loads_verilog,
)
from repro.netlist.validate import is_well_formed
from repro.synth import optimize_heavy, optimize_light
from repro.timing import analyze
from repro.workloads.generators import (
    alu_design,
    comparator_design,
    control_design,
    priority_encoder,
)
from repro.workloads.revisions import apply_revision
from tests.conftest import make_random_circuit


def industrial_flow(spec_builder, kind, seed):
    """spec -> heavy C ; spec+edit -> light C' (the paper's setting)."""
    source = spec_builder()
    impl = optimize_heavy(source, seed=seed)
    revised = source.copy()
    apply_revision(revised, kind, seed=seed)
    return impl, optimize_light(revised)


class TestFullPipeline:
    @pytest.mark.parametrize("builder,kind", [
        (lambda: alu_design(width=3), "gate-type"),
        (lambda: comparator_design(width=4), "polarity"),
        (lambda: priority_encoder(width=5), "wrong-input"),
        (lambda: control_design(8, 5, 10, seed=77), "add-condition"),
    ])
    def test_three_engines_agree_on_function(self, builder, kind):
        impl, spec = industrial_flow(builder, kind, seed=17)
        for engine in (SysEco(EcoConfig(num_samples=8)), DeltaSyn(),
                       ConeMap()):
            result = engine.rectify(impl, spec)
            assert is_well_formed(result.patched)
            assert check_equivalence(result.patched, spec).equivalent, \
                type(engine).__name__

    def test_patched_netlist_round_trips_through_both_formats(self):
        impl, spec = industrial_flow(lambda: alu_design(width=3),
                                     "gate-type", seed=23)
        result = rectify(impl, spec, EcoConfig(num_samples=8))
        via_blif = loads_blif(dumps_blif(result.patched))
        via_verilog = loads_verilog(dumps_verilog(result.patched))
        assert check_equivalence(via_blif, spec).equivalent
        assert check_equivalence(via_verilog, spec).equivalent

    def test_second_eco_on_patched_design(self):
        """A patched design can absorb a second revision (ECO chaining)."""
        source = control_design(8, 5, 10, seed=5)
        impl = optimize_heavy(source, seed=9)
        revised1 = source.copy()
        apply_revision(revised1, "gate-type", seed=3)
        spec1 = optimize_light(revised1)
        first = rectify(impl, spec1, EcoConfig(num_samples=8))

        revised2 = revised1.copy()
        apply_revision(revised2, "polarity", seed=11)
        spec2 = optimize_light(revised2)
        second = rectify(first.patched, spec2, EcoConfig(num_samples=8))
        assert check_equivalence(second.patched, spec2).equivalent

    def test_timing_after_patch_is_analyzable(self):
        impl, spec = industrial_flow(lambda: alu_design(width=4),
                                     "polarity", seed=31)
        result = rectify(impl, spec, EcoConfig(level_aware=True))
        report = analyze(result.patched, period=analyze(impl).period,
                         eco_gates=result.patch.cloned_gates,
                         eco_penalty_ps=10.0)
        assert report.period > 0
        assert set(report.output_slack) == set(impl.outputs)

    def test_engine_patch_never_larger_than_cone_map(self):
        for seed in (1, 2, 3):
            impl, spec = industrial_flow(
                lambda: control_design(8, 6, 12, seed=seed * 7),
                "gate-type", seed=seed)
            syseco = rectify(impl, spec, EcoConfig(num_samples=8))
            cone = ConeMap().rectify(impl, spec)
            assert syseco.stats().gates <= cone.stats().gates


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000),
       kind=st.sampled_from(["gate-type", "polarity", "wrong-input"]))
def test_rectification_always_verifies(seed, kind):
    """Property: for any generated spec and revision, syseco produces a
    provably equivalent patched implementation."""
    source = make_random_circuit(seed % 40, n_inputs=5, n_gates=18,
                                 n_outputs=3)
    impl = optimize_heavy(source, seed=seed)
    revised = source.copy()
    try:
        apply_revision(revised, kind, seed=seed)
    except Exception:
        return  # degenerate circuit for this revision kind
    spec = optimize_light(revised)
    if not nonequivalent_outputs(impl, spec):
        return  # revision was masked; nothing to rectify
    result = rectify(impl, spec, EcoConfig(num_samples=8))
    assert check_equivalence(result.patched, spec).equivalent is True
