"""Unit tests for the CNF container and DIMACS I/O."""

import pytest

from repro.errors import ParseError, SatError
from repro.sat.cnf import Cnf, parse_dimacs, to_dimacs
from repro.sat.solver import UNSAT, Solver


class TestCnf:
    def test_new_var_and_add_clause(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, -b])
        assert cnf.num_vars == 2
        assert len(cnf) == 1

    def test_literal_out_of_range(self):
        cnf = Cnf(1)
        with pytest.raises(SatError):
            cnf.add_clause([2])
        with pytest.raises(SatError):
            cnf.add_clause([0])

    def test_load_into_solver(self):
        cnf = Cnf(2)
        cnf.add_clauses([[1, 2], [-1], [-2, 1]])
        s = Solver()
        s.new_var()  # pre-existing variable shifts the mapping
        mapping = cnf.load_into(s)
        assert mapping == [2, 3]
        assert s.solve() == UNSAT

    def test_repr(self):
        assert "vars=2" in repr(Cnf(2))


class TestDimacs:
    def test_round_trip(self):
        cnf = Cnf(3)
        cnf.add_clauses([[1, -2], [3], [-1, 2, -3]])
        back = parse_dimacs(to_dimacs(cnf))
        assert back.num_vars == 3
        assert back.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 2\n1 2 0\nc mid\n-1 0\n"
        cnf = parse_dimacs(text)
        assert cnf.clauses == [(1, 2), (-1,)]

    def test_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        cnf = parse_dimacs(text)
        assert cnf.clauses == [(1, 2, 3)]

    def test_missing_trailing_zero_tolerated(self):
        cnf = parse_dimacs("p cnf 2 1\n1 -2\n")
        assert cnf.clauses == [(1, -2)]

    @pytest.mark.parametrize("text", [
        "1 2 0\n",                    # clause before problem line
        "p cnf x y\n",                # malformed problem line
        "p sat 2 1\n1 0\n",           # wrong format tag
        "",                           # empty
    ])
    def test_parse_errors(self, text):
        with pytest.raises(ParseError):
            parse_dimacs(text)

    def test_solved_end_to_end(self):
        cnf = parse_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 0\n")
        s = Solver()
        cnf.load_into(s)
        assert s.solve() == UNSAT
