"""Tests for the Tseitin circuit encoding."""

import itertools

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType, eval_gate_bool
from repro.netlist.simulate import evaluate_outputs
from repro.sat.solver import SAT, UNSAT, Solver
from repro.sat.tseitin import CircuitEncoder, encode_circuit
from tests.conftest import make_random_circuit


def assert_encoding_matches_simulation(circuit: Circuit):
    """Exhaustively check the CNF encodes exactly the circuit function."""
    s = Solver()
    varmap = encode_circuit(s, circuit)
    n = len(circuit.inputs)
    for bits in itertools.product([False, True], repeat=n):
        assignment = dict(zip(circuit.inputs, bits))
        expected = evaluate_outputs(circuit, assignment)
        assumptions = [
            varmap[name] if value else -varmap[name]
            for name, value in assignment.items()
        ]
        assert s.solve(assumptions=assumptions) == SAT
        for port, net in circuit.outputs.items():
            got = s.model_value(varmap[net])
            assert got == expected[port], (assignment, port)


@pytest.mark.parametrize("gtype,arity", [
    (GateType.AND, 2), (GateType.AND, 3), (GateType.OR, 2),
    (GateType.OR, 4), (GateType.NAND, 2), (GateType.NAND, 3),
    (GateType.NOR, 2), (GateType.XOR, 2), (GateType.XOR, 3),
    (GateType.XNOR, 2), (GateType.NOT, 1), (GateType.BUF, 1),
    (GateType.MUX, 3), (GateType.CONST0, 0), (GateType.CONST1, 0),
])
def test_single_gate_encoding(gtype, arity):
    c = Circuit()
    ins = c.add_inputs([f"x{i}" for i in range(max(arity, 1))])
    c.add_gate("g", gtype, ins[:arity])
    c.set_output("o", "g")
    assert_encoding_matches_simulation(c)


def test_random_circuits_encode_correctly():
    for seed in range(6):
        c = make_random_circuit(seed, n_inputs=4, n_gates=12)
        assert_encoding_matches_simulation(c)


class TestEncoder:
    def test_shared_input_vars(self, tiny_adder):
        s = Solver()
        enc = CircuitEncoder(s)
        m1 = enc.encode(tiny_adder)
        m2 = enc.encode(tiny_adder.copy(),
                        input_vars={n: m1[n] for n in tiny_adder.inputs})
        # identical circuits over shared inputs: outputs must agree
        for net in tiny_adder.outputs.values():
            neq = enc._encode_xor2(m1[net], m2[net])
            assert s.solve(assumptions=[neq]) == UNSAT

    def test_const_var_shared(self):
        s = Solver()
        enc = CircuitEncoder(s)
        assert enc.const_var(True) == enc.const_var(True)
        assert enc.const_var(False) != enc.const_var(True)
        assert s.solve() == SAT
        assert s.model_value(enc.const_var(True)) is True
        assert s.model_value(enc.const_var(False)) is False

    def test_equality_gadget(self):
        s = Solver()
        enc = CircuitEncoder(s)
        a, b = s.new_var(), s.new_var()
        eq = enc.equality(a, b)
        assert s.solve(assumptions=[eq, a, -b]) == UNSAT
        assert s.solve(assumptions=[eq, a, b]) == SAT
        assert s.solve(assumptions=[-eq, a, b]) == UNSAT

    def test_buf_reuses_variable(self):
        c = Circuit()
        c.add_input("a")
        c.buf("a", name="b")
        c.set_output("o", "b")
        s = Solver()
        varmap = encode_circuit(s, c)
        assert varmap["b"] == varmap["a"]
