"""Unit and property tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SatError
from repro.sat.solver import SAT, UNKNOWN, UNSAT, Solver


def brute_force_sat(n, clauses):
    for bits in itertools.product([False, True], repeat=n):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in c)
               for c in clauses):
            return True
    return False


def make_solver(n, clauses):
    s = Solver()
    for _ in range(n):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    return s


def pigeonhole(n_pigeons, n_holes):
    s = Solver()
    p = {}
    for i in range(n_pigeons):
        for h in range(n_holes):
            p[i, h] = s.new_var()
    for i in range(n_pigeons):
        s.add_clause([p[i, h] for h in range(n_holes)])
    for h in range(n_holes):
        for i in range(n_pigeons):
            for j in range(i + 1, n_pigeons):
                s.add_clause([-p[i, h], -p[j, h]])
    return s


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert Solver().solve() == SAT

    def test_unit_clauses(self):
        s = make_solver(2, [[1], [-2]])
        assert s.solve() == SAT
        assert s.model_value(1) is True
        assert s.model_value(2) is False

    def test_contradiction(self):
        s = make_solver(1, [[1], [-1]])
        assert s.solve() == UNSAT

    def test_tautology_ignored(self):
        s = make_solver(2, [[1, -1], [2]])
        assert s.solve() == SAT

    def test_duplicate_literals_collapsed(self):
        s = make_solver(1, [[1, 1, 1]])
        assert s.solve() == SAT
        assert s.model_value(1) is True

    def test_empty_clause_unsat(self):
        s = Solver()
        s.new_var()
        assert s.add_clause([]) is False
        assert s.solve() == UNSAT

    def test_bad_literal(self):
        s = Solver()
        s.new_var()
        with pytest.raises(SatError):
            s.add_clause([0])
        with pytest.raises(SatError):
            s.add_clause([5])

    def test_model_without_sat(self):
        s = make_solver(1, [[1], [-1]])
        s.solve()
        with pytest.raises(SatError):
            s.model()

    def test_model_mapping(self):
        s = make_solver(3, [[1, 2], [-1], [3]])
        assert s.solve() == SAT
        model = s.model()
        assert model[1] is False
        assert model[2] is True
        assert model[3] is True


class TestConflictDriven:
    def test_pigeonhole_unsat(self):
        s = pigeonhole(5, 4)
        assert s.solve() == UNSAT
        assert s.conflicts > 0

    def test_pigeonhole_sat(self):
        s = pigeonhole(4, 4)
        assert s.solve() == SAT

    def test_learning_restarts_and_reduction(self):
        # large enough to trigger restarts (every 100 conflicts)
        s = pigeonhole(7, 6)
        assert s.solve() == UNSAT
        assert s.conflicts > 100

    def test_budget_unknown(self):
        s = pigeonhole(7, 6)
        assert s.solve(conflict_budget=5) == UNKNOWN
        # solver remains usable afterwards
        assert s.solve() == UNSAT

    def test_solver_unusable_after_unsat(self):
        s = make_solver(1, [[1], [-1]])
        assert s.solve() == UNSAT
        assert s.solve() == UNSAT


class TestAssumptions:
    def test_assumption_forces_branch(self):
        s = make_solver(2, [[1, 2]])
        assert s.solve(assumptions=[-1]) == SAT
        assert s.model_value(2) is True

    def test_conflicting_assumptions(self):
        s = make_solver(2, [[1, 2]])
        assert s.solve(assumptions=[-1, -2]) == UNSAT
        # without assumptions still SAT
        assert s.solve() == SAT

    def test_assumption_contradicting_unit(self):
        s = make_solver(1, [[1]])
        assert s.solve(assumptions=[-1]) == UNSAT
        assert s.solve(assumptions=[1]) == SAT

    def test_incremental_reuse(self):
        s = make_solver(3, [[1, 2, 3]])
        for lits, expect in [([-1, -2], SAT), ([-1, -2, -3], UNSAT),
                             ([3], SAT)]:
            assert s.solve(assumptions=lits) == expect

    def test_add_clause_between_solves(self):
        s = make_solver(2, [[1, 2]])
        assert s.solve() == SAT
        s.add_clause([-1])
        s.add_clause([-2])
        assert s.solve() == UNSAT


class TestRandomized:
    def test_random_3cnf_matches_brute_force(self):
        rng = random.Random(20190602)
        for _ in range(120):
            n = rng.randint(1, 9)
            m = rng.randint(1, 40)
            clauses = []
            for _ in range(m):
                k = min(rng.randint(1, 3), n)
                vs = rng.sample(range(1, n + 1), k)
                clauses.append([v if rng.random() < 0.5 else -v
                                for v in vs])
            s = make_solver(n, clauses)
            expect = SAT if brute_force_sat(n, clauses) else UNSAT
            got = s.solve()
            assert got == expect, clauses
            if got == SAT:
                model = s.model()
                assert all(
                    any(model.get(abs(l), False) == (l > 0) for l in c)
                    for c in clauses
                ), clauses


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.lists(st.integers(-5, 5).filter(lambda x: x != 0),
             min_size=1, max_size=4),
    min_size=1, max_size=25))
def test_solver_agrees_with_brute_force(clauses):
    """Property: CDCL result equals exhaustive enumeration."""
    n = 5
    s = make_solver(n, clauses)
    expect = SAT if brute_force_sat(n, clauses) else UNSAT
    assert s.solve() == expect


class TestUnsatCore:
    def test_core_excludes_irrelevant_assumptions(self):
        s = make_solver(3, [[1, 2]])
        assert s.solve(assumptions=[3, -1, -2]) == UNSAT
        core = s.unsat_core()
        assert set(core) == {-1, -2}

    def test_core_through_implications(self):
        s = make_solver(2, [[-1, -2]])  # x1 -> ~x2
        assert s.solve(assumptions=[1, 2]) == UNSAT
        assert set(s.unsat_core()) == {1, 2}

    def test_core_single_assumption_against_formula(self):
        s = make_solver(1, [[-1]])
        assert s.solve(assumptions=[1]) == UNSAT
        assert s.unsat_core() == [1]

    def test_core_empty_for_plain_unsat(self):
        s = make_solver(1, [[1], [-1]])
        assert s.solve(assumptions=[]) == UNSAT
        assert s.unsat_core() == []

    def test_core_none_when_sat(self):
        s = make_solver(1, [[1]])
        assert s.solve(assumptions=[1]) == SAT
        assert s.unsat_core() is None

    def test_core_after_search_conflicts(self):
        # a pigeonhole sub-problem forced by assumptions: place 3
        # pigeons into 2 holes via assumption-enabled clauses
        s = Solver()
        p = {}
        for i in range(3):
            for h in range(2):
                p[i, h] = s.new_var()
        enable = s.new_var()
        for i in range(3):
            s.add_clause([-enable, p[i, 0], p[i, 1]])
        for h in range(2):
            for i in range(3):
                for j in range(i + 1, 3):
                    s.add_clause([-p[i, h], -p[j, h]])
        assert s.solve(assumptions=[enable]) == UNSAT
        assert s.unsat_core() == [enable]
        assert s.solve(assumptions=[-enable]) == SAT

    def test_core_assumptions_are_subset(self):
        import random
        rng = random.Random(4)
        for _ in range(25):
            n = rng.randint(2, 6)
            clauses = []
            for _ in range(rng.randint(2, 18)):
                k = min(rng.randint(1, 3), n)
                vs = rng.sample(range(1, n + 1), k)
                clauses.append([v if rng.random() < .5 else -v
                                for v in vs])
            assumptions = [v if rng.random() < .5 else -v
                           for v in range(1, n + 1)]
            s = make_solver(n, clauses)
            if s.solve(assumptions=assumptions) == UNSAT:
                core = s.unsat_core()
                assert set(core) <= set(assumptions)
                # replaying only the core stays UNSAT
                s2 = make_solver(n, clauses)
                assert s2.solve(assumptions=core) == UNSAT


class TestClauseArena:
    """The flat-arena clause store: lazy deletion and compaction."""

    @staticmethod
    def _php(pigeons, holes):
        """Pigeonhole CNF: enough conflicts to trigger reductions."""
        s = Solver()
        v = [[s.new_var() for _ in range(holes)]
             for _ in range(pigeons)]
        for p in range(pigeons):
            s.add_clause(v[p])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-v[p1][h], -v[p2][h]])
        return s

    def test_arena_layout(self):
        s = Solver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        assert s.add_clause([a, -b, c])
        [offset] = s._clauses
        header = s._ca[offset]
        assert header >> 2 == 3          # size
        assert not header & 2            # not learnt
        assert not header & 1            # not deleted
        lits = s._ca[offset + 1:offset + 4]
        assert sorted(lits) == sorted(
            [(a - 1) << 1, ((b - 1) << 1) | 1, (c - 1) << 1])

    def test_reduce_marks_deleted_and_watchers_shed_lazily(self):
        s = self._php(6, 5)
        assert s.solve() == UNSAT
        ca = s._ca
        # live databases never reference a deleted clause
        for offset in s._clauses + s._learnts:
            assert not ca[offset] & 1
        # any deleted offsets still hooked into watcher lists are
        # dropped on the next propagation visit, not corrupted
        for watchers in s._watches:
            for offset in watchers:
                assert ca[offset] >> 2 >= 2

    def test_reduction_halves_learnt_db(self):
        s = self._php(7, 6)
        assert s.solve() == UNSAT
        before = len(s._learnts)
        # simulate activity spread, then reduce directly
        s._reduce_db()
        after = len(s._learnts)
        assert after <= before
        for offset in s._learnts:
            assert not s._ca[offset] & 1

    def test_compaction_preserves_state(self):
        s = self._php(6, 5)
        assert s.solve() == UNSAT
        model_clauses = [s._clause_lits(c) for c in s._clauses]
        s._compact()
        assert s._wasted == 0
        assert [s._clause_lits(c) for c in s._clauses] == model_clauses
        for offset in s._clauses + s._learnts:
            assert not s._ca[offset] & 1
        # solver still functional after compaction
        assert s.solve() == UNSAT

    def test_locked_reasons_survive_reduction(self):
        s = Solver()
        vs = [s.new_var() for _ in range(4)]
        s.add_clause(vs)
        assert s.solve() == SAT
        # fabricate a learnt clause locked as a reason
        lits = [(v - 1) << 1 for v in vs[:3]]
        offset = s._alloc(lits, learnt=True)
        s._learnts.append(offset)
        s._attach(offset)
        s._reason[0] = offset
        s._cla_act[offset] = 0.0
        # pad with higher-activity learnts so the locked one is in the
        # drop half
        for k in range(9):
            extra = s._alloc(lits, learnt=True)
            s._learnts.append(extra)
            s._attach(extra)
            s._cla_act[extra] = 1.0 + k
        s._reduce_db()
        assert offset in s._learnts
        assert not s._ca[offset] & 1
        s._reason[0] = -1

    def test_binary_learnts_never_dropped(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        lits = [(a - 1) << 1, ((b - 1) << 1) | 1]
        kept = []
        for k in range(10):
            offset = s._alloc(lits, learnt=True)
            s._learnts.append(offset)
            s._attach(offset)
            s._cla_act[offset] = float(k)
            kept.append(offset)
        s._reduce_db()
        assert sorted(s._learnts) == sorted(kept)
