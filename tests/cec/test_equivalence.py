"""Tests for SAT-based equivalence checking."""

import pytest

from repro.errors import NetlistError
from repro.cec.equivalence import (
    PairwiseChecker,
    check_equivalence,
    check_output_pair,
    nonequivalent_outputs,
)
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import evaluate_outputs
from repro.synth import optimize_heavy
from tests.conftest import make_random_circuit


def two_output_pair():
    left = Circuit("l")
    left.add_inputs(["a", "b", "c"])
    left.set_output("same", left.and_("a", "b"))
    left.set_output("diff", left.or_("a", "c"))
    right = Circuit("r")
    right.add_inputs(["a", "b", "c"])
    right.set_output("same", right.and_("b", "a"))
    right.set_output("diff", right.xor("a", "c"))
    return left, right


class TestCheckEquivalence:
    def test_equivalent_restructured(self):
        c = make_random_circuit(11)
        h = optimize_heavy(c, seed=5)
        result = check_equivalence(c, h)
        assert result.equivalent is True
        assert bool(result)

    def test_counterexample_is_real(self):
        left, right = two_output_pair()
        result = check_equivalence(left, right)
        assert result.equivalent is False
        assert not bool(result)
        cex = result.counterexample
        lv = evaluate_outputs(left, cex)
        rv = evaluate_outputs(right, cex)
        assert any(lv[p] != rv[p] for p in result.failing_outputs)

    def test_failing_outputs_identified(self):
        left, right = two_output_pair()
        result = check_equivalence(left, right)
        assert "diff" in result.failing_outputs
        assert "same" not in result.failing_outputs

    def test_output_subset(self):
        left, right = two_output_pair()
        assert check_equivalence(left, right, outputs=["same"]).equivalent

    def test_no_shared_outputs(self):
        left, _ = two_output_pair()
        right = Circuit("r")
        right.add_input("a")
        right.set_output("other", "a")
        with pytest.raises(NetlistError):
            check_equivalence(left, right)


class TestCheckOutputPair:
    def test_pairwise(self):
        left, right = two_output_pair()
        assert check_output_pair(left, right, "same").equivalent is True
        result = check_output_pair(left, right, "diff")
        assert result.equivalent is False
        assert result.failing_outputs == ("diff",)

    def test_budget_unknown(self):
        # a hard miter: two different-looking but equivalent parity trees
        left = make_random_circuit(3, n_inputs=8, n_gates=60, n_outputs=1)
        right = optimize_heavy(left, seed=9)
        result = check_output_pair(left, right, "y0", conflict_budget=1)
        assert result.equivalent in (True, None)


class TestPairwiseChecker:
    def test_incremental_reuse(self):
        left, right = two_output_pair()
        checker = PairwiseChecker(left, right)
        assert checker.check_pair("same").equivalent is True
        assert checker.check_pair("diff").equivalent is False
        assert checker.check_pair("same").equivalent is True

    def test_missing_port(self):
        left, right = two_output_pair()
        with pytest.raises(NetlistError):
            PairwiseChecker(left, right).check_pair("nope")


class TestNonequivalentOutputs:
    def test_lists_only_bad_ports(self):
        left, right = two_output_pair()
        assert nonequivalent_outputs(left, right) == ["diff"]

    def test_empty_when_equivalent(self):
        c = make_random_circuit(2)
        assert nonequivalent_outputs(c, c.copy()) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_simulation_prepass_is_exact(self, seed):
        """The sim pre-pass must never change the SAT-only verdict."""
        import random

        from repro.netlist.circuit import Pin
        from repro.netlist.traverse import topological_order

        left = make_random_circuit(seed)
        right = left.copy(name="right")
        rng = random.Random(seed + 50)
        names = topological_order(right)
        k = rng.randrange(len(names))
        gate = right.gates[names[k]]
        pool = [n for n in list(right.inputs) + names[:k]
                if n != gate.fanins[0]]
        if pool:
            right.rewire_pin(Pin.gate(names[k], 0), rng.choice(pool))
        assert (nonequivalent_outputs(left, right)
                == nonequivalent_outputs(left, right, sim_rounds=0))
