"""Unit tests for miter construction."""

import pytest

from repro.errors import NetlistError
from repro.cec.miter import build_miter
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import evaluate_outputs
from repro.netlist.validate import is_well_formed


def xor_impl() -> Circuit:
    c = Circuit("x1")
    c.add_inputs(["a", "b"])
    c.set_output("o", c.xor("a", "b"))
    return c


def xor_via_muxes() -> Circuit:
    c = Circuit("x2")
    c.add_inputs(["a", "b"])
    nb = c.not_("b")
    c.set_output("o", c.mux("a", "b", nb))
    return c


def or_impl() -> Circuit:
    c = Circuit("x3")
    c.add_inputs(["a", "b"])
    c.set_output("o", c.or_("a", "b"))
    return c


class TestBuildMiter:
    def test_equivalent_circuits_never_differ(self):
        info = build_miter(xor_impl(), xor_via_muxes())
        assert is_well_formed(info.circuit)
        for a in (False, True):
            for b in (False, True):
                out = evaluate_outputs(info.circuit, {"a": a, "b": b})
                assert out["diff"] is False

    def test_inequivalent_circuits_differ_somewhere(self):
        info = build_miter(xor_impl(), or_impl())
        diffs = [
            evaluate_outputs(info.circuit, {"a": a, "b": b})["diff"]
            for a in (False, True) for b in (False, True)
        ]
        assert any(diffs)
        # xor vs or differ exactly on a=b=1
        assert diffs == [False, False, False, True]

    def test_diff_nets_per_output(self):
        left, right = xor_impl(), or_impl()
        left.set_output("p", "a")
        right.set_output("p", "a")
        info = build_miter(left, right)
        assert set(info.diff_nets) == {"o", "p"}

    def test_output_subset_selection(self):
        left, right = xor_impl(), or_impl()
        left.set_output("p", "a")
        right.set_output("p", "a")
        info = build_miter(left, right, outputs=["p"])
        assert set(info.diff_nets) == {"p"}

    def test_no_shared_outputs(self):
        left = xor_impl()
        right = Circuit("r")
        right.add_input("a")
        right.set_output("zzz", "a")
        with pytest.raises(NetlistError):
            build_miter(left, right)

    def test_missing_output_on_one_side(self):
        with pytest.raises(NetlistError):
            build_miter(xor_impl(), or_impl(), outputs=["nope"])

    def test_right_side_extra_inputs_added(self):
        left = xor_impl()
        right = xor_impl()
        right.add_input("extra")
        info = build_miter(left, right)
        assert "extra" in info.circuit.inputs

    def test_maps_cover_both_sides(self):
        left, right = xor_impl(), xor_via_muxes()
        info = build_miter(left, right)
        for net in left.gates:
            assert net in info.left_map
        for net in right.gates:
            assert net in info.right_map
