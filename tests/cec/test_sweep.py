"""Tests for SAT sweeping."""

import pytest

from repro.cec.equivalence import check_equivalence
from repro.cec.sweep import equivalence_classes, prune_dangling, \
    sweep_equivalent_nets
from repro.netlist.circuit import Circuit
from tests.conftest import exhaustive_equivalent, make_random_circuit


def redundant_circuit() -> Circuit:
    c = Circuit("red")
    c.add_inputs(["a", "b"])
    c.and_("a", "b", name="g1")
    c.and_("b", "a", name="g2")          # same function as g1
    c.not_(c.or_("a", "b"), name="g3")   # nor
    c.nor("a", "b", name="g4")           # same function as g3
    c.set_output("o1", c.or_("g1", "g3"))
    c.set_output("o2", c.or_("g2", "g4"))
    return c


class TestEquivalenceClasses:
    def test_finds_duplicate_functions(self):
        classes = equivalence_classes(redundant_circuit())
        grouped = {frozenset(cl) for cl in classes}
        assert any({"g1", "g2"} <= g for g in grouped)
        assert any({"g3", "g4"} <= g for g in grouped)

    def test_representative_is_topologically_first(self):
        for cl in equivalence_classes(redundant_circuit()):
            assert cl == sorted(
                cl, key=lambda n: cl.index(n))  # stable order returned

    def test_no_classes_in_irredundant_circuit(self, tiny_adder):
        assert equivalence_classes(tiny_adder) == []


class TestSweep:
    def test_merges_and_preserves_function(self):
        c = redundant_circuit()
        swept, merges = sweep_equivalent_nets(c)
        assert merges >= 2
        assert swept.num_gates < c.num_gates
        assert exhaustive_equivalent(c, swept)

    def test_original_untouched(self):
        c = redundant_circuit()
        before = c.num_gates
        sweep_equivalent_nets(c)
        assert c.num_gates == before

    def test_random_circuits_preserved(self):
        for seed in range(8):
            c = make_random_circuit(seed, n_inputs=5, n_gates=25)
            swept, _ = sweep_equivalent_nets(c)
            assert check_equivalence(c, swept).equivalent, seed

    def test_inputs_never_merged_away(self):
        c = redundant_circuit()
        swept, _ = sweep_equivalent_nets(c)
        assert swept.inputs == c.inputs


class TestPruneDangling:
    def test_removes_dead_logic(self):
        c = Circuit()
        c.add_inputs(["a", "b"])
        c.and_("a", "b", name="live")
        c.or_("a", "b", name="dead")
        c.not_("dead", name="dead2")
        c.set_output("o", "live")
        removed = prune_dangling(c)
        assert removed == 2
        assert set(c.gates) == {"live"}

    def test_keeps_everything_reachable(self, tiny_adder):
        assert prune_dangling(tiny_adder) == 0
