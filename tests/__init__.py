"""Test package for the syseco reproduction."""
