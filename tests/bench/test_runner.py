"""Tests for the experiment harness (fast representatives only)."""

import math

import pytest

from repro.bench.runner import (
    Table1Row,
    Table2Row,
    Table3Row,
    table1_row,
    table2_row,
    table3_row,
)
from repro.bench.tables import (
    format_table1,
    format_table2,
    format_table3,
    reduction_ratios,
)
from repro.eco.patch import PatchStats
from repro.workloads.suite import build_case, build_timing_case


@pytest.fixture(scope="module")
def case2():
    return build_case(2)


class TestTable1:
    def test_row_contents(self, case2):
        row = table1_row(case2)
        assert row.case_id == 2
        assert row.gates == case2.impl.num_gates
        assert 0 < row.revised_outputs <= row.outputs
        assert row.revised_percent == pytest.approx(
            100 * row.revised_outputs / row.outputs)

    def test_format(self, case2):
        text = format_table1([table1_row(case2)])
        assert "Table 1" in text
        assert str(case2.impl.num_gates) in text


class TestTable2:
    def test_row_and_shape(self, case2):
        row = table2_row(case2)
        assert row.designer_estimate == case2.designer_estimate
        # the paper's headline ordering on this case
        assert row.syseco.gates <= row.deltasyn.gates
        assert row.deltasyn.gates <= row.commercial.gates
        assert row.syseco_seconds > 0

    def test_format_and_ratios(self, case2):
        rows = [table2_row(case2)]
        text = format_table2(rows)
        assert "Table 2" in text
        assert "reduction ratios" in text
        ratios = reduction_ratios(rows)
        assert 0 <= ratios["gates"] <= 1.5

    def test_ratio_skips_zero_denominators(self):
        row = Table2Row(
            case_id=1, designer_estimate=1,
            commercial=PatchStats(1, 1, 1, 1), commercial_seconds=0.0,
            deltasyn=PatchStats(0, 0, 0, 0), deltasyn_seconds=0.0,
            syseco=PatchStats(0, 0, 0, 0), syseco_seconds=0.0,
        )
        ratios = reduction_ratios([row])
        assert all(math.isnan(v) for v in ratios.values())


class TestTable3:
    def test_row(self):
        case = build_timing_case(15)
        row = table3_row(case)
        assert row.case_id == 15
        assert row.syseco_gates >= 0
        text = format_table3([row])
        assert "Table 3" in text
        assert "slack" in text


class TestFormattingHelpers:
    def test_fmt_time(self):
        from repro.bench.tables import _fmt_time
        assert _fmt_time(0.5) == "00:00:00.50"
        assert _fmt_time(61.25) == "00:01:01.25"
        assert _fmt_time(3723.0) == "01:02:03.00"

    def test_table1_row_render(self):
        row = Table1Row(case_id=7, inputs=1, outputs=2, gates=3,
                        nets=4, sinks=5, revised_outputs=1,
                        revised_percent=50.0)
        text = format_table1([row])
        assert " 7 " in text or text.splitlines()[2].startswith("   7")

    def test_table3_render_negative_slack(self):
        row = Table3Row(case_id=12, deltasyn_gates=10,
                        deltasyn_slack_ps=-27.0, syseco_gates=2,
                        syseco_slack_ps=-14.0)
        text = format_table3([row])
        assert "-27.00" in text and "-14.00" in text


class TestTracedCaseRun:
    def test_returns_result_and_record(self, case2):
        from repro.bench.runner import traced_case_run

        result, record = traced_case_run(case2)
        assert record.kind == "bench"
        assert record.name == "case2"
        assert record.counters == result.counters.as_dict()
        assert record.config["num_samples"] > 0
        # the sampler's timeline is present with monotone BDD nodes
        assert len(record.samples) >= 2
        series = [s.get("bdd_nodes", 0) for s in record.samples]
        assert series == sorted(series)
        assert series[-1] > 0

    def test_lint_screen_stats_can_collect_records(self, case2):
        from repro.bench.runner import lint_screen_stats

        records = []
        stats = lint_screen_stats(case2, run_records=records)
        assert stats["case_id"] == 2
        assert stats["lint_screens"] >= stats["lint_rejects"]
        assert len(records) == 1
        assert records[0].name == "case2"


class TestPublish:
    def test_writes_table_and_json_twin(self, tmp_path):
        from repro.bench.runner import publish

        path = publish("t.txt", "rendered", data={"k": 1},
                       results_dir=str(tmp_path / "results"))
        assert open(path).read() == "rendered\n"
        import json
        twin = json.loads(open(str(tmp_path / "results" / "t.json")).read())
        assert twin == {"k": 1}

    def test_run_records_land_in_store(self, tmp_path, case2):
        from repro.bench.runner import publish, traced_case_run
        from repro.obs import RunStore

        _, record = traced_case_run(case2)
        store_dir = str(tmp_path / "runs")
        publish("t.txt", "rendered", results_dir=str(tmp_path / "r"),
                store=store_dir, run_records=[record])
        records = RunStore(store_dir).load_all()
        assert [r.run_id for r in records] == [record.run_id]
        series = [s.get("bdd_nodes", 0) for s in records[0].samples]
        assert series == sorted(series) and len(series) >= 2
