"""Tests for the static timing substrate."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.timing.delay_model import DEFAULT_DELAY_MODEL, DelayModel
from repro.timing.sta import analyze, arrival_times, critical_path


def chain(n: int) -> Circuit:
    c = Circuit("chain")
    c.add_inputs(["a", "b"])
    acc = "a"
    for i in range(n):
        acc = c.and_(acc, "b", name=f"g{i}")
    c.set_output("o", acc)
    return c


class TestDelayModel:
    def test_inverter_faster_than_xor(self):
        m = DEFAULT_DELAY_MODEL
        assert m.gate_delay(GateType.NOT, 1, 1) < \
            m.gate_delay(GateType.XOR, 2, 1)

    def test_load_increases_delay(self):
        m = DEFAULT_DELAY_MODEL
        assert m.gate_delay(GateType.AND, 2, 5) > \
            m.gate_delay(GateType.AND, 2, 1)

    def test_wide_gates_charged(self):
        m = DEFAULT_DELAY_MODEL
        assert m.gate_delay(GateType.AND, 4, 1) > \
            m.gate_delay(GateType.AND, 2, 1)


class TestArrivalTimes:
    def test_inputs_at_zero(self):
        arr = arrival_times(chain(3))
        assert arr["a"] == 0.0
        assert arr["b"] == 0.0

    def test_monotone_along_chain(self):
        arr = arrival_times(chain(4))
        values = [arr[f"g{i}"] for i in range(4)]
        assert values == sorted(values)
        assert values[0] > 0

    def test_hand_computed_chain(self):
        model = DelayModel(load_ps=0.0, extra_input_ps=0.0)
        arr = arrival_times(chain(3), model)
        unit = model.intrinsic[GateType.AND]
        assert arr["g2"] == pytest.approx(3 * unit)


class TestAnalyze:
    def test_default_period_closes_timing(self):
        report = analyze(chain(5))
        assert report.worst_slack == pytest.approx(0.0)
        assert report.period == report.max_arrival

    def test_explicit_period_slack(self):
        report = analyze(chain(5), period=1000.0)
        assert report.worst_slack == pytest.approx(
            1000.0 - report.max_arrival)

    def test_worst_output(self):
        c = chain(3)
        c.set_output("fast", "g0")
        report = analyze(c)
        assert report.worst_output == "o"
        assert report.output_slack["fast"] > report.output_slack["o"]


class TestCriticalPath:
    def test_path_spans_input_to_output(self):
        c = chain(4)
        path = critical_path(c)
        assert path[0] in c.inputs
        assert path[-1] == c.outputs["o"]

    def test_path_is_connected(self):
        c = chain(4)
        path = critical_path(c)
        for upstream, downstream in zip(path, path[1:]):
            assert upstream in c.gates[downstream].fanins

    def test_empty_outputs(self):
        c = Circuit()
        c.add_input("a")
        assert critical_path(c) == []
